package rtl

import "fmt"

// ParseError reports a syntax error with line context.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("rtl: line %d: %s", e.Line, e.Msg) }

// parser is a recursive-descent / precedence-climbing parser over the
// token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses an RTL statement list (the body of a spawn "val" or
// "sem" clause) and returns its AST.  A single expression parses to
// that expression; multiple parallel or sequential operations parse
// to a Seq.
func Parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseStmtList()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input starting at %q", p.peek().text)
	}
	return UnwrapSeq(n), nil
}

// MustParse is Parse for known-good inputs (tests, embedded
// descriptions validated at init); it panics on error.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) peek() token { return p.toks[p.pos] }

// next consumes a token; the EOF sentinel is sticky so error paths
// deep in the grammar can never index past the stream.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) atOp(s string) bool {
	t := p.peek()
	return t.kind == tokOp && t.text == s
}

func (p *parser) eatOp(s string) bool {
	if p.atOp(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(s string) error {
	if !p.eatOp(s) {
		return p.errf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.peek().line, Msg: fmt.Sprintf(format, args...)}
}

// parseStmtList parses steps separated by ';', each step a ','-list
// of parallel operations.
func (p *parser) parseStmtList() (Node, error) {
	var steps [][]Node
	for {
		var step []Node
		for {
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			step = append(step, s)
			if !p.eatOp(",") {
				break
			}
		}
		steps = append(steps, step)
		if !p.eatOp(";") {
			break
		}
	}
	return Seq{Steps: steps}, nil
}

// parseStmt parses one operation: an assignment, a guarded statement
// ("cond ? stmt : stmt", right-associative through the else arm), or
// a bare expression.
func (p *parser) parseStmt() (Node, error) {
	e, err := p.parseMapLevel()
	if err != nil {
		return nil, err
	}
	if p.eatOp(":=") {
		rhs, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return Assign{LHS: e, RHS: rhs}, nil
	}
	if p.eatOp("?") {
		t, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var f Node
		if p.eatOp(":") {
			f, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return Cond{C: e, T: t, F: f}, nil
	}
	return e, nil
}

func (p *parser) parseMapLevel() (Node, error) {
	e, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	for p.eatOp("@") {
		v, err := p.parseBinary(0)
		if err != nil {
			return nil, err
		}
		e = MapApply{Fn: e, Vec: v}
	}
	return e, nil
}

// binLevels lists binary operators from loosest to tightest.  "=" is
// accepted as a synonym for "==" (the paper writes "aflag=1").
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"==", "!=", "<", "<=", ">", ">=", "="},
	{"|"},
	{"^"},
	{"&"},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Node, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	l, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range binLevels[level] {
			if p.atOp(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return l, nil
		}
		p.next()
		r, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		if matched == "=" {
			matched = "=="
		}
		l = Bin{Op: matched, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Node, error) {
	for _, op := range []string{"-", "~", "!"} {
		if p.atOp(op) {
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return Un{Op: op, X: x}, nil
		}
	}
	return p.parseApp()
}

// parseApp parses juxtaposition application: f x y == ((f x) y).
// A parenthesized multi-operation argument applies element-wise, so
// "cc_add(a, b)" becomes Apply(Apply(cc_add, a), b).
func (p *parser) parseApp() (Node, error) {
	f, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for p.startsPrimary() {
		arg, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		f = applyArg(f, arg)
	}
	return f, nil
}

// applyArg applies f to arg, spreading a one-step parenthesized
// tuple "(a, b, c)" into curried applications.
func applyArg(f, arg Node) Node {
	if s, ok := arg.(Seq); ok && len(s.Steps) == 1 && len(s.Steps[0]) > 1 {
		for _, a := range s.Steps[0] {
			f = Apply{Fn: f, Arg: UnwrapSeq(a)}
		}
		return f
	}
	return Apply{Fn: f, Arg: UnwrapSeq(arg)}
}

func (p *parser) startsPrimary() bool {
	t := p.peek()
	switch t.kind {
	case tokNum, tokIdent, tokSym:
		return true
	case tokOp:
		return t.text == "(" || t.text == "[" || t.text == "\\"
	}
	return false
}

// parsePostfix parses a primary followed by indexing "[e]" and an
// optional width suffix "{n}" (memory references: M[e]{w}).
func (p *parser) parsePostfix() (Node, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atOp("["):
			p.next()
			idx, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			e = Index{Base: e, Elem: UnwrapSeq(idx)}
		case p.atOp("{"):
			p.next()
			w, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("}"); err != nil {
				return nil, err
			}
			ix, ok := e.(Index)
			if !ok {
				return nil, p.errf("width suffix {..} only follows an indexed reference")
			}
			ix.Width = UnwrapSeq(w)
			e = ix
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.peek()
	switch t.kind {
	case tokNum:
		p.next()
		return Num{Val: t.val}, nil
	case tokIdent:
		p.next()
		return Ident{Name: t.text}, nil
	case tokSym:
		p.next()
		return Sym{Name: t.text}, nil
	}
	switch {
	case p.eatOp("("):
		n, err := p.parseStmtList()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return n, nil
	case p.eatOp("["):
		return p.parseVector()
	case p.eatOp("\\"):
		name := p.next()
		if name.kind != tokIdent {
			return nil, p.errf("expected lambda parameter, found %q", name.text)
		}
		if err := p.expectOp("."); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return Lambda{Param: name.text, Body: body}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

// parseVector parses "[e1 e2 ...]" with whitespace (or optional
// comma) separated elements, supporting numeric ranges "lo..hi".
// Elements are postfix expressions: juxtaposition separates elements
// rather than applying, matching the paper's name matrices.
func (p *parser) parseVector() (Node, error) {
	var elems []Node
	for !p.atOp("]") {
		e, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		if p.atOp(".") {
			// Range lo..hi of integer literals.
			p.next()
			if err := p.expectOp("."); err != nil {
				return nil, err
			}
			hiN, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			lo, ok1 := e.(Num)
			hi, ok2 := hiN.(Num)
			if !ok1 || !ok2 || hi.Val < lo.Val {
				return nil, p.errf("bad range in vector")
			}
			for v := lo.Val; v <= hi.Val; v++ {
				elems = append(elems, Num{Val: v})
			}
		} else {
			elems = append(elems, e)
		}
		p.eatOp(",") // commas optional between elements
	}
	p.next() // consume ']'
	return Vector{Elems: elems}, nil
}
