package rtl

import (
	"fmt"
	"math"
)

// This file implements the compile pass behind the emulator's
// translation cache: a ground semantic AST is lowered once into a
// flat program of closures specialized on the instruction's decoded
// field values.  Field references become constants, register indices
// and immediates fold at compile time (so "iflag = 1 ? sex(simm13) :
// R[rs2]" compiles to either a constant or a single register read),
// temporaries become slots in a reusable array instead of a map, and
// condition tests and builtins resolve to direct function calls.
// Executing a Prog therefore does no AST dispatch and, with a
// caller-supplied Ctx, no allocation on the common path.
//
// Compilation is deliberately conservative: any construct whose
// lowering cannot be proven equivalent to the interpreter (dynamic
// memory widths, unreduced lambdas, malformed statements) fails with
// a CompileError and the caller falls back to Exec, which remains the
// semantic reference.

// CompileEnv supplies the static half of a Machine: the decoded
// instruction's field values and the description's register model.
// Every Machine is a CompileEnv.
type CompileEnv interface {
	// Field returns the decoded value of an instruction field.
	Field(name string) (int64, bool)
	// FieldWidth returns a field's declared bit width.
	FieldWidth(name string) (int, bool)
	// RegAlias resolves a named register to a register file and index.
	RegAlias(name string) (file string, idx int64, ok bool)
	// IsRegFile reports whether name denotes a register file.
	IsRegFile(name string) bool
}

// CompileError reports that a semantic AST cannot be lowered; callers
// fall back to the AST interpreter (Exec).
type CompileError struct {
	Expr Node
	Msg  string
}

func (e *CompileError) Error() string {
	if e.Expr == nil {
		return "rtl: compile: " + e.Msg
	}
	return fmt.Sprintf("rtl: compile %s: %s", e.Expr, e.Msg)
}

type exprFn func(ctx *Ctx) (uint64, error)

// OpFunc is one compiled operation of a direct-mode program; see
// Prog.DirectOps.  stmtFn is the internal name.
type OpFunc func(ctx *Ctx) error

type stmtFn = OpFunc

// cexpr is a compiled expression: a constant folded at compile time,
// or a closure evaluated at run time.  A bare register read also
// carries its (file, index) shape so operators over it fuse into a
// single closure (see pure1/pure2) instead of a chain of evals — the
// eval chain is the hot path of every translated instruction.
type cexpr struct {
	isConst bool
	val     uint64
	fn      exprFn
	isReg   bool
	rfile   string
	ridx    int64
}

func constExpr(v uint64) cexpr { return cexpr{isConst: true, val: v} }
func dynExpr(fn exprFn) cexpr  { return cexpr{fn: fn} }

func (e cexpr) eval(ctx *Ctx) (uint64, error) {
	if e.isConst {
		return e.val, nil
	}
	return e.fn(ctx)
}

// Pending-write kinds, mirroring the interpreter's parallel-step
// commit discipline.
const (
	pendReg = iota
	pendMem
	pendPC
)

type cpend struct {
	kind int
	w    int
	file string
	idx  int64
	addr uint64
	val  uint64
}

// Ctx is the reusable scratch state for Prog.Run.  The zero value is
// ready to use; callers that execute many programs (the emulator)
// keep one Ctx so temporaries and pending writes never reallocate.
type Ctx struct {
	m     Machine
	temps []uint64
	pend  []cpend
	// sargs is scratch for SpecialMachine calls, so register-window
	// operations do not allocate an argument slice per execution.
	sargs [2]uint64
}

// Prog is a compiled semantic program.  It is immutable after Compile
// and safe for concurrent Run calls with distinct Ctx values.
type Prog struct {
	steps  [][]stmtFn
	nTemps int
	flags  uint8
	// direct-mode programs (CompileDirect) commit writes immediately
	// and carry the flattened op list RunDirect executes.
	direct bool
	flat   []stmtFn
}

// Run executes the program against m, reusing ctx's buffers.  The
// execution discipline is identical to Exec: parallel operations
// within a step read all inputs before any write commits, and pc
// assignments in steps after the first are delayed transfers.
func (p *Prog) Run(m Machine, ctx *Ctx) error {
	ctx.m = m
	if cap(ctx.temps) < p.nTemps {
		ctx.temps = make([]uint64, p.nTemps)
	} else {
		ctx.temps = ctx.temps[:p.nTemps]
		for i := range ctx.temps {
			ctx.temps[i] = 0
		}
	}
	for i, step := range p.steps {
		ctx.pend = ctx.pend[:0]
		for _, op := range step {
			if err := op(ctx); err != nil {
				return err
			}
		}
		delayed := i > 0
		for j := range ctx.pend {
			pw := &ctx.pend[j]
			switch pw.kind {
			case pendReg:
				if err := m.WriteReg(pw.file, pw.idx, pw.val); err != nil {
					return err
				}
			case pendMem:
				if err := m.WriteMem(pw.addr, pw.w, pw.val); err != nil {
					return err
				}
			default:
				m.SetPC(pw.val, delayed)
			}
		}
	}
	return nil
}

type compiler struct {
	env   CompileEnv
	slots map[string]int
	flags uint8
	// Direct mode (CompileDirect): assignments commit immediately and
	// an tracks the per-step equivalence proof (see direct.go).
	direct  bool
	stepIdx int
	an      *directAnalysis
}

// Compile lowers a ground semantic statement list to a Prog
// specialized on env's field values.
func Compile(n Node, env CompileEnv) (*Prog, error) {
	return compileWith(n, env, false)
}

func compileWith(n Node, env CompileEnv, direct bool) (*Prog, error) {
	if n == nil {
		return nil, &CompileError{nil, "no semantics"}
	}
	c := &compiler{env: env, slots: map[string]int{}, direct: direct}
	if direct {
		c.an = &directAnalysis{}
	}
	seq, ok := n.(Seq)
	if !ok {
		seq = Seq{Steps: [][]Node{{n}}}
	}
	p := &Prog{steps: make([][]stmtFn, 0, len(seq.Steps))}
	for i, step := range seq.Steps {
		c.stepIdx = i
		fns, err := c.lowerStep(step, n)
		if err != nil {
			return nil, err
		}
		p.steps = append(p.steps, fns)
	}
	p.nTemps = len(c.slots)
	p.flags = c.flags
	if direct {
		p.direct = true
		for _, step := range p.steps {
			p.flat = append(p.flat, step...)
		}
	}
	return p, nil
}

// lowerStep compiles one parallel step.  In direct mode, when the
// program-order lowering trips the intra-step analysis (typically a
// read of a register an earlier op just committed — subcc overwriting
// its own source while the cc op still wants the old value), the ops
// of the step are retried in other serializations: parallel-step
// semantics reads all inputs before any commit, so any order whose
// immediate commits are never read later in the step — under the
// stricter permuted-mode rules, see directAnalysis.permuted — yields
// the same observable state.  Re-lowering is idempotent (temp slots
// are keyed by name, effect flags are monotonic over the same op
// set), and closures from failed attempts are discarded.
func (c *compiler) lowerStep(step []Node, whole Node) ([]stmtFn, error) {
	if c.an != nil {
		c.an.resetStep()
	}
	var fns []stmtFn
	for _, op := range step {
		if err := c.stmt(op, &fns); err != nil {
			return nil, err
		}
	}
	if c.an == nil || !c.an.failed {
		return fns, nil
	}
	if n := len(step); n >= 2 && n <= 3 {
		order := make([]int, n)
		for perm := 1; permute(order, perm); perm++ {
			c.an.resetStep()
			c.an.permuted = true
			fns = nil
			for _, j := range order {
				if err := c.stmt(step[j], &fns); err != nil {
					return nil, err
				}
			}
			if !c.an.failed {
				return fns, nil
			}
		}
	}
	return nil, &CompileError{whole, "immediate write commits would be observable"}
}

// permute fills order with the k-th permutation of 0..len(order)-1
// (factorial number system; k=0 is identity).  It reports false when k
// is out of range.
func permute(order []int, k int) bool {
	n := len(order)
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	fact := 1
	for i := 2; i <= n; i++ {
		fact *= i
	}
	if k < 0 || k >= fact {
		return false
	}
	for i := 0; i < n; i++ {
		fact /= n - i
		j := k / fact
		k %= fact
		order[i] = avail[j]
		avail = append(avail[:j], avail[j+1:]...)
	}
	return true
}

func (c *compiler) slot(name string) int {
	if s, ok := c.slots[name]; ok {
		return s
	}
	s := len(c.slots)
	c.slots[name] = s
	return s
}

// stmt compiles one operation, appending its closures to out.
func (c *compiler) stmt(n Node, out *[]stmtFn) error {
	switch x := UnwrapSeq(n).(type) {
	case Assign:
		rhs, err := c.expr(x.RHS)
		if err != nil {
			return err
		}
		return c.assign(x.LHS, rhs, out)
	case Cond:
		cond, err := c.expr(x.C)
		if err != nil {
			return err
		}
		// A constant guard (the annul bit, an immediate-form flag)
		// selects its arm at compile time.
		if cond.isConst {
			if cond.val != 0 {
				return c.stmt(x.T, out)
			}
			if x.F != nil {
				return c.stmt(x.F, out)
			}
			return nil
		}
		var tOps, fOps []stmtFn
		if err := c.stmt(x.T, &tOps); err != nil {
			return err
		}
		if x.F != nil {
			if err := c.stmt(x.F, &fOps); err != nil {
				return err
			}
		}
		fn := cond.fn
		*out = append(*out, func(ctx *Ctx) error {
			v, err := fn(ctx)
			if err != nil {
				return err
			}
			ops := fOps
			if v != 0 {
				ops = tOps
			}
			for _, op := range ops {
				if err := op(ctx); err != nil {
					return err
				}
			}
			return nil
		})
		return nil
	case Seq:
		// A nested parenthesized group inside a guard arm joins the
		// current step, as in the interpreter.
		for _, step := range x.Steps {
			for _, op := range step {
				if err := c.stmt(op, out); err != nil {
					return err
				}
			}
		}
		return nil
	case Ident:
		if x.Name == "annul" {
			// Annulment happens during evaluation in both modes and
			// reads nothing, so direct mode needs no analysis note.
			c.flags |= FlagAnnul
			*out = append(*out, func(ctx *Ctx) error {
				ctx.m.Annul()
				return nil
			})
			return nil
		}
		return &CompileError{x, "identifier is not a statement"}
	case Apply:
		fn, args := spine(x)
		if id, ok := fn.(Ident); ok && id.Name == "trap" && len(args) == 1 {
			arg, err := c.expr(args[0])
			if err != nil {
				return err
			}
			c.flags |= FlagTrap
			if c.an != nil {
				c.an.exclusive()
			}
			*out = append(*out, func(ctx *Ctx) error {
				v, err := arg.eval(ctx)
				if err != nil {
					return err
				}
				return ctx.m.Trap(v)
			})
			return nil
		}
		// Effectful builtins (register-window operations) evaluate as
		// expressions for their side effects.
		e, err := c.expr(x)
		if err != nil {
			return err
		}
		if e.isConst {
			return nil
		}
		efn := e.fn
		*out = append(*out, func(ctx *Ctx) error {
			_, err := efn(ctx)
			return err
		})
		return nil
	default:
		return &CompileError{n, "not a statement"}
	}
}

// regWrite builds the committing closure for a constant-index
// register write: buffered in normal mode, immediate in direct mode.
func (c *compiler) regWrite(file string, idx int64, rhs cexpr) stmtFn {
	if c.an != nil {
		c.an.regWrite(file, idx)
	}
	if c.direct {
		switch {
		case rhs.isConst:
			v := rhs.val
			return func(ctx *Ctx) error { return ctx.m.WriteReg(file, idx, v) }
		case rhs.isReg:
			sf, si := rhs.rfile, rhs.ridx
			return func(ctx *Ctx) error {
				v, err := ctx.m.ReadReg(sf, si)
				if err != nil {
					return err
				}
				return ctx.m.WriteReg(file, idx, v)
			}
		default:
			fn := rhs.fn
			return func(ctx *Ctx) error {
				v, err := fn(ctx)
				if err != nil {
					return err
				}
				return ctx.m.WriteReg(file, idx, v)
			}
		}
	}
	return func(ctx *Ctx) error {
		v, err := rhs.eval(ctx)
		if err != nil {
			return err
		}
		ctx.pend = append(ctx.pend, cpend{kind: pendReg, file: file, idx: idx, val: v})
		return nil
	}
}

func (c *compiler) assign(lhs Node, rhs cexpr, out *[]stmtFn) error {
	switch t := UnwrapSeq(lhs).(type) {
	case Ident:
		if t.Name == "pc" {
			c.flags |= FlagPC
			if c.an != nil {
				c.an.pcWrite()
			}
			if c.direct {
				// Whether a pc assignment is a delayed transfer depends
				// only on its step position, so the flag folds here.
				delayed := c.stepIdx > 0
				*out = append(*out, func(ctx *Ctx) error {
					v, err := rhs.eval(ctx)
					if err != nil {
						return err
					}
					ctx.m.SetPC(v, delayed)
					return nil
				})
				return nil
			}
			*out = append(*out, func(ctx *Ctx) error {
				v, err := rhs.eval(ctx)
				if err != nil {
					return err
				}
				ctx.pend = append(ctx.pend, cpend{kind: pendPC, val: v})
				return nil
			})
			return nil
		}
		if file, idx, ok := c.env.RegAlias(t.Name); ok {
			*out = append(*out, c.regWrite(file, idx, rhs))
			return nil
		}
		if _, isField := c.env.Field(t.Name); isField {
			return &CompileError{lhs, "cannot assign to instruction field " + t.Name}
		}
		// Local temporary; visible immediately.
		slot := c.slot(t.Name)
		*out = append(*out, func(ctx *Ctx) error {
			v, err := rhs.eval(ctx)
			if err != nil {
				return err
			}
			ctx.temps[slot] = v
			return nil
		})
		return nil
	case Index:
		base, ok := t.Base.(Ident)
		if !ok {
			return &CompileError{lhs, "bad assignment target"}
		}
		if base.Name == "M" {
			addr, err := c.expr(t.Elem)
			if err != nil {
				return err
			}
			w, err := c.width(t)
			if err != nil {
				return err
			}
			c.flags |= FlagMemWrite
			if c.an != nil {
				c.an.memWrite()
			}
			if c.direct {
				*out = append(*out, func(ctx *Ctx) error {
					v, err := rhs.eval(ctx)
					if err != nil {
						return err
					}
					a, err := addr.eval(ctx)
					if err != nil {
						return err
					}
					return ctx.m.WriteMem(a, w, v)
				})
				return nil
			}
			*out = append(*out, func(ctx *Ctx) error {
				v, err := rhs.eval(ctx)
				if err != nil {
					return err
				}
				a, err := addr.eval(ctx)
				if err != nil {
					return err
				}
				ctx.pend = append(ctx.pend, cpend{kind: pendMem, addr: a, w: w, val: v})
				return nil
			})
			return nil
		}
		if !c.env.IsRegFile(base.Name) {
			return &CompileError{lhs, "unknown register file " + base.Name}
		}
		idx, err := c.expr(t.Elem)
		if err != nil {
			return err
		}
		if idx.isConst {
			*out = append(*out, c.regWrite(base.Name, int64(idx.val), rhs))
			return nil
		}
		file := base.Name
		ifn := idx.fn
		if c.an != nil {
			c.an.regWriteDyn(file)
		}
		if c.direct {
			*out = append(*out, func(ctx *Ctx) error {
				v, err := rhs.eval(ctx)
				if err != nil {
					return err
				}
				i, err := ifn(ctx)
				if err != nil {
					return err
				}
				return ctx.m.WriteReg(file, int64(i), v)
			})
			return nil
		}
		*out = append(*out, func(ctx *Ctx) error {
			v, err := rhs.eval(ctx)
			if err != nil {
				return err
			}
			i, err := ifn(ctx)
			if err != nil {
				return err
			}
			ctx.pend = append(ctx.pend, cpend{kind: pendReg, file: file, idx: int64(i), val: v})
			return nil
		})
		return nil
	default:
		return &CompileError{lhs, "bad assignment target"}
	}
}

func (c *compiler) width(ix Index) (int, error) {
	if ix.Width == nil {
		return 4, nil
	}
	w, err := c.expr(ix.Width)
	if err != nil {
		return 0, err
	}
	if !w.isConst {
		return 0, &CompileError{ix, "dynamic memory width"}
	}
	if w.val != 1 && w.val != 2 && w.val != 4 && w.val != 8 {
		return 0, &CompileError{ix, fmt.Sprintf("bad memory width %d", w.val)}
	}
	return int(w.val), nil
}

func (c *compiler) expr(n Node) (cexpr, error) {
	switch x := UnwrapSeq(n).(type) {
	case Num:
		return constExpr(uint64(x.Val)), nil
	case Ident:
		return c.ident(x)
	case Bin:
		return c.bin(x)
	case Un:
		v, err := c.expr(x.X)
		if err != nil {
			return cexpr{}, err
		}
		switch x.Op {
		case "-":
			return pure1(v, func(a uint64) uint64 { return -a }), nil
		case "~":
			return pure1(v, func(a uint64) uint64 { return ^a }), nil
		case "!":
			return pure1(v, func(a uint64) uint64 { return b2u(a == 0) }), nil
		}
		return cexpr{}, &CompileError{n, "unknown unary op " + x.Op}
	case Cond:
		cond, err := c.expr(x.C)
		if err != nil {
			return cexpr{}, err
		}
		if cond.isConst {
			if cond.val != 0 {
				return c.expr(x.T)
			}
			if x.F == nil {
				return cexpr{}, &CompileError{n, "conditional expression lacks else arm"}
			}
			return c.expr(x.F)
		}
		t, err := c.expr(x.T)
		if err != nil {
			return cexpr{}, err
		}
		var f cexpr
		if x.F == nil {
			// The interpreter only errors when the condition is false
			// at run time; preserve that.
			if c.an != nil {
				c.an.mayErr()
			}
			at := n
			f = dynExpr(func(ctx *Ctx) (uint64, error) {
				return 0, &EvalError{at, "conditional expression lacks else arm"}
			})
		} else {
			if f, err = c.expr(x.F); err != nil {
				return cexpr{}, err
			}
		}
		cfn := cond.fn
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			v, err := cfn(ctx)
			if err != nil {
				return 0, err
			}
			if v != 0 {
				return t.eval(ctx)
			}
			return f.eval(ctx)
		}), nil
	case Index:
		return c.indexExpr(x)
	case Apply:
		return c.applyExpr(x)
	default:
		return cexpr{}, &CompileError{n, "not an expression"}
	}
}

func (c *compiler) ident(x Ident) (cexpr, error) {
	// Mirror the interpreter's precedence: temporaries, fields, pc,
	// register aliases.  (Temporary and field names never collide:
	// assignment to a field name is rejected.)
	if slot, ok := c.slots[x.Name]; ok {
		return dynExpr(func(ctx *Ctx) (uint64, error) { return ctx.temps[slot], nil }), nil
	}
	if v, ok := c.env.Field(x.Name); ok {
		return constExpr(uint64(v)), nil
	}
	if x.Name == "pc" {
		if c.an != nil {
			c.an.pcRead()
		}
		return dynExpr(func(ctx *Ctx) (uint64, error) { return ctx.m.PC(), nil }), nil
	}
	if file, idx, ok := c.env.RegAlias(x.Name); ok {
		return c.regRead(file, idx), nil
	}
	return cexpr{}, &CompileError{x, "unknown identifier"}
}

func (c *compiler) regRead(file string, idx int64) cexpr {
	if c.an != nil {
		c.an.regRead(file, idx)
	}
	return cexpr{
		fn:    func(ctx *Ctx) (uint64, error) { return ctx.m.ReadReg(file, idx) },
		isReg: true,
		rfile: file,
		ridx:  idx,
	}
}

func (c *compiler) indexExpr(x Index) (cexpr, error) {
	base, ok := x.Base.(Ident)
	if !ok {
		return cexpr{}, &CompileError{x, "bad indexed reference"}
	}
	if base.Name == "M" {
		addr, err := c.expr(x.Elem)
		if err != nil {
			return cexpr{}, err
		}
		w, err := c.width(x)
		if err != nil {
			return cexpr{}, err
		}
		if c.an != nil {
			c.an.memRead()
		}
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			a, err := addr.eval(ctx)
			if err != nil {
				return 0, err
			}
			return ctx.m.ReadMem(a, w)
		}), nil
	}
	if !c.env.IsRegFile(base.Name) {
		return cexpr{}, &CompileError{x, "unknown register file " + base.Name}
	}
	idx, err := c.expr(x.Elem)
	if err != nil {
		return cexpr{}, err
	}
	if idx.isConst {
		return c.regRead(base.Name, int64(idx.val)), nil
	}
	file := base.Name
	ifn := idx.fn
	if c.an != nil {
		c.an.regReadDyn(file)
	}
	return dynExpr(func(ctx *Ctx) (uint64, error) {
		i, err := ifn(ctx)
		if err != nil {
			return 0, err
		}
		return ctx.m.ReadReg(file, int64(i))
	}), nil
}

func (c *compiler) bin(x Bin) (cexpr, error) {
	l, err := c.expr(x.L)
	if err != nil {
		return cexpr{}, err
	}
	switch x.Op {
	case "&&", "||":
		r, err := c.expr(x.R)
		if err != nil {
			return cexpr{}, err
		}
		and := x.Op == "&&"
		if l.isConst {
			if and && l.val == 0 {
				return constExpr(0), nil
			}
			if !and && l.val != 0 {
				return constExpr(1), nil
			}
			return pure1(r, func(v uint64) uint64 { return b2u(v != 0) }), nil
		}
		lfn := l.fn
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			lv, err := lfn(ctx)
			if err != nil {
				return 0, err
			}
			if and && lv == 0 {
				return 0, nil
			}
			if !and && lv != 0 {
				return 1, nil
			}
			rv, err := r.eval(ctx)
			if err != nil {
				return 0, err
			}
			return b2u(rv != 0), nil
		}), nil
	}
	r, err := c.expr(x.R)
	if err != nil {
		return cexpr{}, err
	}
	switch x.Op {
	case "+":
		return pure2(l, r, func(a, b uint64) uint64 { return a + b }), nil
	case "-":
		return pure2(l, r, func(a, b uint64) uint64 { return a - b }), nil
	case "*":
		return pure2(l, r, func(a, b uint64) uint64 { return a * b }), nil
	case "/", "%":
		mod := x.Op == "%"
		if c.an != nil {
			c.an.mayErr()
		}
		at := x
		div := func(a, b uint64) (uint64, error) {
			if b == 0 {
				return 0, &EvalError{at, "division by zero"}
			}
			if mod {
				return uint64(int64(a) % int64(b)), nil
			}
			return uint64(int64(a) / int64(b)), nil
		}
		if l.isConst && r.isConst {
			if v, err := div(l.val, r.val); err == nil {
				return constExpr(v), nil
			}
		}
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			a, err := l.eval(ctx)
			if err != nil {
				return 0, err
			}
			b, err := r.eval(ctx)
			if err != nil {
				return 0, err
			}
			return div(a, b)
		}), nil
	case "&":
		return pure2(l, r, func(a, b uint64) uint64 { return a & b }), nil
	case "|":
		return pure2(l, r, func(a, b uint64) uint64 { return a | b }), nil
	case "^":
		return pure2(l, r, func(a, b uint64) uint64 { return a ^ b }), nil
	case "<<":
		return pure2(l, r, func(a, b uint64) uint64 { return a << (b & 63) }), nil
	case ">>":
		return pure2(l, r, func(a, b uint64) uint64 { return a >> (b & 63) }), nil
	case "==":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(a == b) }), nil
	case "!=":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(a != b) }), nil
	case "<":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(int64(a) < int64(b)) }), nil
	case "<=":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(int64(a) <= int64(b)) }), nil
	case ">":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(int64(a) > int64(b)) }), nil
	case ">=":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(int64(a) >= int64(b)) }), nil
	}
	return cexpr{}, &CompileError{x, "unknown operator " + x.Op}
}

func (c *compiler) applyExpr(x Apply) (cexpr, error) {
	fn, args := spine(x)
	switch f := fn.(type) {
	case Sym:
		if len(args) != 1 {
			return cexpr{}, &CompileError{x, "condition test wants one register"}
		}
		// Resolve the condition name at compile time to a pure test:
		// calling condTest from the closure would box the AST context
		// argument into an interface on every executed branch, one
		// heap allocation per dynamic condition evaluation.
		test, ok := condTestFn(f.Name)
		if !ok {
			return cexpr{}, &CompileError{x, "unknown condition test '" + f.Name}
		}
		arg, err := c.expr(args[0])
		if err != nil {
			return cexpr{}, err
		}
		return pure1(arg, test), nil
	case Ident:
		return c.builtinExpr(f.Name, args, x)
	default:
		return cexpr{}, &CompileError{x, "cannot apply non-function"}
	}
}

func (c *compiler) builtinExpr(name string, args []Node, at Node) (cexpr, error) {
	vals := make([]cexpr, len(args))
	for i, a := range args {
		v, err := c.expr(a)
		if err != nil {
			return cexpr{}, err
		}
		vals[i] = v
	}
	argc := func(n int) error {
		if len(vals) != n {
			return &CompileError{at, fmt.Sprintf("builtin %s wants %d arguments, got %d", name, n, len(vals))}
		}
		return nil
	}
	switch name {
	case "sex":
		switch len(args) {
		case 1:
			id, ok := UnwrapSeq(args[0]).(Ident)
			if !ok {
				return cexpr{}, &CompileError{at, "sex of non-field needs explicit width"}
			}
			w, ok := c.env.FieldWidth(id.Name)
			if !ok {
				return cexpr{}, &CompileError{at, "sex: unknown field " + id.Name}
			}
			return pure1(vals[0], func(v uint64) uint64 { return signExtend(v, w) }), nil
		case 2:
			return pure2(vals[0], vals[1], func(v, w uint64) uint64 { return signExtend(v, int(w)) }), nil
		}
		return cexpr{}, &CompileError{at, "sex wants 1 or 2 arguments"}
	case "sexb":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 { return signExtend(v, 8) }), nil
	case "sexh":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 { return signExtend(v, 16) }), nil
	case "shl":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 { return u32(uint32(a) << (b & 31)) }), nil
	case "shr":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 { return u32(uint32(a) >> (b & 31)) }), nil
	case "sar":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 {
			return uint64(int64(int32(uint32(a)) >> (b & 31)))
		}), nil
	case "cc_add":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 { return ccAdd(uint32(a), uint32(b)) }), nil
	case "cc_sub":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 { return ccSub(uint32(a), uint32(b)) }), nil
	case "cc_logic":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 { return ccLogic(uint32(v)) }), nil
	case "umul":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 { return u32(uint32(a * b)) }), nil
	case "smul":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 {
			return u32(uint32(int32(uint32(a)) * int32(uint32(b))))
		}), nil
	case "udiv", "sdiv", "urem", "srem":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		op, l, r := name, vals[0], vals[1]
		if c.an != nil {
			c.an.mayErr()
		}
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			av, err := l.eval(ctx)
			if err != nil {
				return 0, err
			}
			bv, err := r.eval(ctx)
			if err != nil {
				return 0, err
			}
			a, b := uint32(av), uint32(bv)
			if b == 0 {
				return 0, &EvalError{at, "division by zero"}
			}
			switch op {
			case "udiv":
				return u32(a / b), nil
			case "urem":
				return u32(a % b), nil
			case "sdiv":
				return u32(uint32(int32(a) / int32(b))), nil
			default:
				return u32(uint32(int32(a) % int32(b))), nil
			}
		}), nil
	case "fadd":
		return c.fbin(vals, at, func(a, b float32) float32 { return a + b })
	case "fsub":
		return c.fbin(vals, at, func(a, b float32) float32 { return a - b })
	case "fmul":
		return c.fbin(vals, at, func(a, b float32) float32 { return a * b })
	case "fdiv":
		return c.fbin(vals, at, func(a, b float32) float32 { return a / b })
	case "fneg":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 {
			return u32(math.Float32bits(-math.Float32frombits(uint32(v))))
		}), nil
	case "fabs":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 {
			return u32(math.Float32bits(float32(math.Abs(float64(math.Float32frombits(uint32(v)))))))
		}), nil
	case "fcmp":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(av, bv uint64) uint64 {
			a := math.Float32frombits(uint32(av))
			b := math.Float32frombits(uint32(bv))
			var fcc uint64
			switch {
			case a != a || b != b: // NaN
				fcc = 3 // unordered
			case a < b:
				fcc = 1
			case a > b:
				fcc = 2
			default:
				fcc = 0
			}
			return fcc << 10
		}), nil
	case "fitos":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 {
			return u32(math.Float32bits(float32(int32(uint32(v)))))
		}), nil
	case "fstoi":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 {
			return u32(uint32(int32(math.Float32frombits(uint32(v)))))
		}), nil
	case "winsave", "winrestore":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		c.flags |= FlagSpecial
		if c.an != nil {
			c.an.exclusive()
		}
		n, a, b := name, vals[0], vals[1]
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			av, err := a.eval(ctx)
			if err != nil {
				return 0, err
			}
			bv, err := b.eval(ctx)
			if err != nil {
				return 0, err
			}
			sm, ok := ctx.m.(SpecialMachine)
			if !ok {
				return 0, ErrDynamic
			}
			// The ctx-owned scratch keeps window operations from
			// allocating an argument slice per execution.
			ctx.sargs[0], ctx.sargs[1] = av, bv
			return 0, sm.Special(n, ctx.sargs[:2])
		}), nil
	}
	return cexpr{}, &CompileError{at, "unknown builtin " + name}
}

func (c *compiler) fbin(vals []cexpr, at Node, f func(a, b float32) float32) (cexpr, error) {
	if len(vals) != 2 {
		return cexpr{}, &CompileError{at, "float builtin wants 2 arguments"}
	}
	return pure2(vals[0], vals[1], func(a, b uint64) uint64 {
		return u32(math.Float32bits(f(math.Float32frombits(uint32(a)), math.Float32frombits(uint32(b)))))
	}), nil
}

// pure1 builds a one-argument pure operation, folding constants and
// fusing a register-read argument into the operator's own closure so
// evaluation is one call instead of a chain.
func pure1(a cexpr, f func(uint64) uint64) cexpr {
	if a.isConst {
		return constExpr(f(a.val))
	}
	if a.isReg {
		file, idx := a.rfile, a.ridx
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			v, err := ctx.m.ReadReg(file, idx)
			if err != nil {
				return 0, err
			}
			return f(v), nil
		})
	}
	fn := a.fn
	return dynExpr(func(ctx *Ctx) (uint64, error) {
		v, err := fn(ctx)
		if err != nil {
			return 0, err
		}
		return f(v), nil
	})
}

// pure2 builds a two-argument pure operation, folding constants.  The
// common argument shapes — register reads and constants, which is what
// every ALU instruction lowers to — fuse into a single closure; the
// left-then-right evaluation order of the generic form is preserved in
// each specialization.
func pure2(a, b cexpr, f func(x, y uint64) uint64) cexpr {
	if a.isConst && b.isConst {
		return constExpr(f(a.val, b.val))
	}
	if a.isReg {
		af, ai := a.rfile, a.ridx
		switch {
		case b.isConst:
			k := b.val
			return dynExpr(func(ctx *Ctx) (uint64, error) {
				x, err := ctx.m.ReadReg(af, ai)
				if err != nil {
					return 0, err
				}
				return f(x, k), nil
			})
		case b.isReg:
			bf, bi := b.rfile, b.ridx
			return dynExpr(func(ctx *Ctx) (uint64, error) {
				x, err := ctx.m.ReadReg(af, ai)
				if err != nil {
					return 0, err
				}
				y, err := ctx.m.ReadReg(bf, bi)
				if err != nil {
					return 0, err
				}
				return f(x, y), nil
			})
		default:
			bfn := b.fn
			return dynExpr(func(ctx *Ctx) (uint64, error) {
				x, err := ctx.m.ReadReg(af, ai)
				if err != nil {
					return 0, err
				}
				y, err := bfn(ctx)
				if err != nil {
					return 0, err
				}
				return f(x, y), nil
			})
		}
	}
	if a.isConst && b.isReg {
		k, bf, bi := a.val, b.rfile, b.ridx
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			y, err := ctx.m.ReadReg(bf, bi)
			if err != nil {
				return 0, err
			}
			return f(k, y), nil
		})
	}
	if !a.isConst && b.isConst {
		afn, k := a.fn, b.val
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			x, err := afn(ctx)
			if err != nil {
				return 0, err
			}
			return f(x, k), nil
		})
	}
	return dynExpr(func(ctx *Ctx) (uint64, error) {
		x, err := a.eval(ctx)
		if err != nil {
			return 0, err
		}
		y, err := b.eval(ctx)
		if err != nil {
			return 0, err
		}
		return f(x, y), nil
	})
}
