package rtl

import (
	"fmt"
	"math"
)

// This file implements the compile pass behind the emulator's
// translation cache: a ground semantic AST is lowered once into a
// flat program of closures specialized on the instruction's decoded
// field values.  Field references become constants, register indices
// and immediates fold at compile time (so "iflag = 1 ? sex(simm13) :
// R[rs2]" compiles to either a constant or a single register read),
// temporaries become slots in a reusable array instead of a map, and
// condition tests and builtins resolve to direct function calls.
// Executing a Prog therefore does no AST dispatch and, with a
// caller-supplied Ctx, no allocation on the common path.
//
// Compilation is deliberately conservative: any construct whose
// lowering cannot be proven equivalent to the interpreter (dynamic
// memory widths, unreduced lambdas, malformed statements) fails with
// a CompileError and the caller falls back to Exec, which remains the
// semantic reference.

// CompileEnv supplies the static half of a Machine: the decoded
// instruction's field values and the description's register model.
// Every Machine is a CompileEnv.
type CompileEnv interface {
	// Field returns the decoded value of an instruction field.
	Field(name string) (int64, bool)
	// FieldWidth returns a field's declared bit width.
	FieldWidth(name string) (int, bool)
	// RegAlias resolves a named register to a register file and index.
	RegAlias(name string) (file string, idx int64, ok bool)
	// IsRegFile reports whether name denotes a register file.
	IsRegFile(name string) bool
}

// CompileError reports that a semantic AST cannot be lowered; callers
// fall back to the AST interpreter (Exec).
type CompileError struct {
	Expr Node
	Msg  string
}

func (e *CompileError) Error() string {
	if e.Expr == nil {
		return "rtl: compile: " + e.Msg
	}
	return fmt.Sprintf("rtl: compile %s: %s", e.Expr, e.Msg)
}

type exprFn func(ctx *Ctx) (uint64, error)
type stmtFn func(ctx *Ctx) error

// cexpr is a compiled expression: a constant folded at compile time,
// or a closure evaluated at run time.
type cexpr struct {
	isConst bool
	val     uint64
	fn      exprFn
}

func constExpr(v uint64) cexpr { return cexpr{isConst: true, val: v} }
func dynExpr(fn exprFn) cexpr  { return cexpr{fn: fn} }

func (e cexpr) eval(ctx *Ctx) (uint64, error) {
	if e.isConst {
		return e.val, nil
	}
	return e.fn(ctx)
}

// Pending-write kinds, mirroring the interpreter's parallel-step
// commit discipline.
const (
	pendReg = iota
	pendMem
	pendPC
)

type cpend struct {
	kind int
	w    int
	file string
	idx  int64
	addr uint64
	val  uint64
}

// Ctx is the reusable scratch state for Prog.Run.  The zero value is
// ready to use; callers that execute many programs (the emulator)
// keep one Ctx so temporaries and pending writes never reallocate.
type Ctx struct {
	m     Machine
	temps []uint64
	pend  []cpend
}

// Prog is a compiled semantic program.  It is immutable after Compile
// and safe for concurrent Run calls with distinct Ctx values.
type Prog struct {
	steps  [][]stmtFn
	nTemps int
}

// Run executes the program against m, reusing ctx's buffers.  The
// execution discipline is identical to Exec: parallel operations
// within a step read all inputs before any write commits, and pc
// assignments in steps after the first are delayed transfers.
func (p *Prog) Run(m Machine, ctx *Ctx) error {
	ctx.m = m
	if cap(ctx.temps) < p.nTemps {
		ctx.temps = make([]uint64, p.nTemps)
	} else {
		ctx.temps = ctx.temps[:p.nTemps]
		for i := range ctx.temps {
			ctx.temps[i] = 0
		}
	}
	for i, step := range p.steps {
		ctx.pend = ctx.pend[:0]
		for _, op := range step {
			if err := op(ctx); err != nil {
				return err
			}
		}
		delayed := i > 0
		for j := range ctx.pend {
			pw := &ctx.pend[j]
			switch pw.kind {
			case pendReg:
				if err := m.WriteReg(pw.file, pw.idx, pw.val); err != nil {
					return err
				}
			case pendMem:
				if err := m.WriteMem(pw.addr, pw.w, pw.val); err != nil {
					return err
				}
			default:
				m.SetPC(pw.val, delayed)
			}
		}
	}
	return nil
}

type compiler struct {
	env   CompileEnv
	slots map[string]int
}

// Compile lowers a ground semantic statement list to a Prog
// specialized on env's field values.
func Compile(n Node, env CompileEnv) (*Prog, error) {
	if n == nil {
		return nil, &CompileError{nil, "no semantics"}
	}
	c := &compiler{env: env, slots: map[string]int{}}
	seq, ok := n.(Seq)
	if !ok {
		seq = Seq{Steps: [][]Node{{n}}}
	}
	p := &Prog{steps: make([][]stmtFn, 0, len(seq.Steps))}
	for _, step := range seq.Steps {
		var fns []stmtFn
		for _, op := range step {
			if err := c.stmt(op, &fns); err != nil {
				return nil, err
			}
		}
		p.steps = append(p.steps, fns)
	}
	p.nTemps = len(c.slots)
	return p, nil
}

func (c *compiler) slot(name string) int {
	if s, ok := c.slots[name]; ok {
		return s
	}
	s := len(c.slots)
	c.slots[name] = s
	return s
}

// stmt compiles one operation, appending its closures to out.
func (c *compiler) stmt(n Node, out *[]stmtFn) error {
	switch x := UnwrapSeq(n).(type) {
	case Assign:
		rhs, err := c.expr(x.RHS)
		if err != nil {
			return err
		}
		return c.assign(x.LHS, rhs, out)
	case Cond:
		cond, err := c.expr(x.C)
		if err != nil {
			return err
		}
		// A constant guard (the annul bit, an immediate-form flag)
		// selects its arm at compile time.
		if cond.isConst {
			if cond.val != 0 {
				return c.stmt(x.T, out)
			}
			if x.F != nil {
				return c.stmt(x.F, out)
			}
			return nil
		}
		var tOps, fOps []stmtFn
		if err := c.stmt(x.T, &tOps); err != nil {
			return err
		}
		if x.F != nil {
			if err := c.stmt(x.F, &fOps); err != nil {
				return err
			}
		}
		fn := cond.fn
		*out = append(*out, func(ctx *Ctx) error {
			v, err := fn(ctx)
			if err != nil {
				return err
			}
			ops := fOps
			if v != 0 {
				ops = tOps
			}
			for _, op := range ops {
				if err := op(ctx); err != nil {
					return err
				}
			}
			return nil
		})
		return nil
	case Seq:
		// A nested parenthesized group inside a guard arm joins the
		// current step, as in the interpreter.
		for _, step := range x.Steps {
			for _, op := range step {
				if err := c.stmt(op, out); err != nil {
					return err
				}
			}
		}
		return nil
	case Ident:
		if x.Name == "annul" {
			*out = append(*out, func(ctx *Ctx) error {
				ctx.m.Annul()
				return nil
			})
			return nil
		}
		return &CompileError{x, "identifier is not a statement"}
	case Apply:
		fn, args := spine(x)
		if id, ok := fn.(Ident); ok && id.Name == "trap" && len(args) == 1 {
			arg, err := c.expr(args[0])
			if err != nil {
				return err
			}
			*out = append(*out, func(ctx *Ctx) error {
				v, err := arg.eval(ctx)
				if err != nil {
					return err
				}
				return ctx.m.Trap(v)
			})
			return nil
		}
		// Effectful builtins (register-window operations) evaluate as
		// expressions for their side effects.
		e, err := c.expr(x)
		if err != nil {
			return err
		}
		if e.isConst {
			return nil
		}
		efn := e.fn
		*out = append(*out, func(ctx *Ctx) error {
			_, err := efn(ctx)
			return err
		})
		return nil
	default:
		return &CompileError{n, "not a statement"}
	}
}

func regWrite(file string, idx int64, rhs cexpr) stmtFn {
	return func(ctx *Ctx) error {
		v, err := rhs.eval(ctx)
		if err != nil {
			return err
		}
		ctx.pend = append(ctx.pend, cpend{kind: pendReg, file: file, idx: idx, val: v})
		return nil
	}
}

func (c *compiler) assign(lhs Node, rhs cexpr, out *[]stmtFn) error {
	switch t := UnwrapSeq(lhs).(type) {
	case Ident:
		if t.Name == "pc" {
			*out = append(*out, func(ctx *Ctx) error {
				v, err := rhs.eval(ctx)
				if err != nil {
					return err
				}
				ctx.pend = append(ctx.pend, cpend{kind: pendPC, val: v})
				return nil
			})
			return nil
		}
		if file, idx, ok := c.env.RegAlias(t.Name); ok {
			*out = append(*out, regWrite(file, idx, rhs))
			return nil
		}
		if _, isField := c.env.Field(t.Name); isField {
			return &CompileError{lhs, "cannot assign to instruction field " + t.Name}
		}
		// Local temporary; visible immediately.
		slot := c.slot(t.Name)
		*out = append(*out, func(ctx *Ctx) error {
			v, err := rhs.eval(ctx)
			if err != nil {
				return err
			}
			ctx.temps[slot] = v
			return nil
		})
		return nil
	case Index:
		base, ok := t.Base.(Ident)
		if !ok {
			return &CompileError{lhs, "bad assignment target"}
		}
		if base.Name == "M" {
			addr, err := c.expr(t.Elem)
			if err != nil {
				return err
			}
			w, err := c.width(t)
			if err != nil {
				return err
			}
			*out = append(*out, func(ctx *Ctx) error {
				v, err := rhs.eval(ctx)
				if err != nil {
					return err
				}
				a, err := addr.eval(ctx)
				if err != nil {
					return err
				}
				ctx.pend = append(ctx.pend, cpend{kind: pendMem, addr: a, w: w, val: v})
				return nil
			})
			return nil
		}
		if !c.env.IsRegFile(base.Name) {
			return &CompileError{lhs, "unknown register file " + base.Name}
		}
		idx, err := c.expr(t.Elem)
		if err != nil {
			return err
		}
		if idx.isConst {
			*out = append(*out, regWrite(base.Name, int64(idx.val), rhs))
			return nil
		}
		file := base.Name
		ifn := idx.fn
		*out = append(*out, func(ctx *Ctx) error {
			v, err := rhs.eval(ctx)
			if err != nil {
				return err
			}
			i, err := ifn(ctx)
			if err != nil {
				return err
			}
			ctx.pend = append(ctx.pend, cpend{kind: pendReg, file: file, idx: int64(i), val: v})
			return nil
		})
		return nil
	default:
		return &CompileError{lhs, "bad assignment target"}
	}
}

func (c *compiler) width(ix Index) (int, error) {
	if ix.Width == nil {
		return 4, nil
	}
	w, err := c.expr(ix.Width)
	if err != nil {
		return 0, err
	}
	if !w.isConst {
		return 0, &CompileError{ix, "dynamic memory width"}
	}
	if w.val != 1 && w.val != 2 && w.val != 4 && w.val != 8 {
		return 0, &CompileError{ix, fmt.Sprintf("bad memory width %d", w.val)}
	}
	return int(w.val), nil
}

func (c *compiler) expr(n Node) (cexpr, error) {
	switch x := UnwrapSeq(n).(type) {
	case Num:
		return constExpr(uint64(x.Val)), nil
	case Ident:
		return c.ident(x)
	case Bin:
		return c.bin(x)
	case Un:
		v, err := c.expr(x.X)
		if err != nil {
			return cexpr{}, err
		}
		switch x.Op {
		case "-":
			return pure1(v, func(a uint64) uint64 { return -a }), nil
		case "~":
			return pure1(v, func(a uint64) uint64 { return ^a }), nil
		case "!":
			return pure1(v, func(a uint64) uint64 { return b2u(a == 0) }), nil
		}
		return cexpr{}, &CompileError{n, "unknown unary op " + x.Op}
	case Cond:
		cond, err := c.expr(x.C)
		if err != nil {
			return cexpr{}, err
		}
		if cond.isConst {
			if cond.val != 0 {
				return c.expr(x.T)
			}
			if x.F == nil {
				return cexpr{}, &CompileError{n, "conditional expression lacks else arm"}
			}
			return c.expr(x.F)
		}
		t, err := c.expr(x.T)
		if err != nil {
			return cexpr{}, err
		}
		var f cexpr
		if x.F == nil {
			// The interpreter only errors when the condition is false
			// at run time; preserve that.
			at := n
			f = dynExpr(func(ctx *Ctx) (uint64, error) {
				return 0, &EvalError{at, "conditional expression lacks else arm"}
			})
		} else {
			if f, err = c.expr(x.F); err != nil {
				return cexpr{}, err
			}
		}
		cfn := cond.fn
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			v, err := cfn(ctx)
			if err != nil {
				return 0, err
			}
			if v != 0 {
				return t.eval(ctx)
			}
			return f.eval(ctx)
		}), nil
	case Index:
		return c.indexExpr(x)
	case Apply:
		return c.applyExpr(x)
	default:
		return cexpr{}, &CompileError{n, "not an expression"}
	}
}

func (c *compiler) ident(x Ident) (cexpr, error) {
	// Mirror the interpreter's precedence: temporaries, fields, pc,
	// register aliases.  (Temporary and field names never collide:
	// assignment to a field name is rejected.)
	if slot, ok := c.slots[x.Name]; ok {
		return dynExpr(func(ctx *Ctx) (uint64, error) { return ctx.temps[slot], nil }), nil
	}
	if v, ok := c.env.Field(x.Name); ok {
		return constExpr(uint64(v)), nil
	}
	if x.Name == "pc" {
		return dynExpr(func(ctx *Ctx) (uint64, error) { return ctx.m.PC(), nil }), nil
	}
	if file, idx, ok := c.env.RegAlias(x.Name); ok {
		return regRead(file, idx), nil
	}
	return cexpr{}, &CompileError{x, "unknown identifier"}
}

func regRead(file string, idx int64) cexpr {
	return dynExpr(func(ctx *Ctx) (uint64, error) { return ctx.m.ReadReg(file, idx) })
}

func (c *compiler) indexExpr(x Index) (cexpr, error) {
	base, ok := x.Base.(Ident)
	if !ok {
		return cexpr{}, &CompileError{x, "bad indexed reference"}
	}
	if base.Name == "M" {
		addr, err := c.expr(x.Elem)
		if err != nil {
			return cexpr{}, err
		}
		w, err := c.width(x)
		if err != nil {
			return cexpr{}, err
		}
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			a, err := addr.eval(ctx)
			if err != nil {
				return 0, err
			}
			return ctx.m.ReadMem(a, w)
		}), nil
	}
	if !c.env.IsRegFile(base.Name) {
		return cexpr{}, &CompileError{x, "unknown register file " + base.Name}
	}
	idx, err := c.expr(x.Elem)
	if err != nil {
		return cexpr{}, err
	}
	if idx.isConst {
		return regRead(base.Name, int64(idx.val)), nil
	}
	file := base.Name
	ifn := idx.fn
	return dynExpr(func(ctx *Ctx) (uint64, error) {
		i, err := ifn(ctx)
		if err != nil {
			return 0, err
		}
		return ctx.m.ReadReg(file, int64(i))
	}), nil
}

func (c *compiler) bin(x Bin) (cexpr, error) {
	l, err := c.expr(x.L)
	if err != nil {
		return cexpr{}, err
	}
	switch x.Op {
	case "&&", "||":
		r, err := c.expr(x.R)
		if err != nil {
			return cexpr{}, err
		}
		and := x.Op == "&&"
		if l.isConst {
			if and && l.val == 0 {
				return constExpr(0), nil
			}
			if !and && l.val != 0 {
				return constExpr(1), nil
			}
			return pure1(r, func(v uint64) uint64 { return b2u(v != 0) }), nil
		}
		lfn := l.fn
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			lv, err := lfn(ctx)
			if err != nil {
				return 0, err
			}
			if and && lv == 0 {
				return 0, nil
			}
			if !and && lv != 0 {
				return 1, nil
			}
			rv, err := r.eval(ctx)
			if err != nil {
				return 0, err
			}
			return b2u(rv != 0), nil
		}), nil
	}
	r, err := c.expr(x.R)
	if err != nil {
		return cexpr{}, err
	}
	switch x.Op {
	case "+":
		return pure2(l, r, func(a, b uint64) uint64 { return a + b }), nil
	case "-":
		return pure2(l, r, func(a, b uint64) uint64 { return a - b }), nil
	case "*":
		return pure2(l, r, func(a, b uint64) uint64 { return a * b }), nil
	case "/", "%":
		mod := x.Op == "%"
		at := x
		div := func(a, b uint64) (uint64, error) {
			if b == 0 {
				return 0, &EvalError{at, "division by zero"}
			}
			if mod {
				return uint64(int64(a) % int64(b)), nil
			}
			return uint64(int64(a) / int64(b)), nil
		}
		if l.isConst && r.isConst {
			if v, err := div(l.val, r.val); err == nil {
				return constExpr(v), nil
			}
		}
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			a, err := l.eval(ctx)
			if err != nil {
				return 0, err
			}
			b, err := r.eval(ctx)
			if err != nil {
				return 0, err
			}
			return div(a, b)
		}), nil
	case "&":
		return pure2(l, r, func(a, b uint64) uint64 { return a & b }), nil
	case "|":
		return pure2(l, r, func(a, b uint64) uint64 { return a | b }), nil
	case "^":
		return pure2(l, r, func(a, b uint64) uint64 { return a ^ b }), nil
	case "<<":
		return pure2(l, r, func(a, b uint64) uint64 { return a << (b & 63) }), nil
	case ">>":
		return pure2(l, r, func(a, b uint64) uint64 { return a >> (b & 63) }), nil
	case "==":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(a == b) }), nil
	case "!=":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(a != b) }), nil
	case "<":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(int64(a) < int64(b)) }), nil
	case "<=":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(int64(a) <= int64(b)) }), nil
	case ">":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(int64(a) > int64(b)) }), nil
	case ">=":
		return pure2(l, r, func(a, b uint64) uint64 { return b2u(int64(a) >= int64(b)) }), nil
	}
	return cexpr{}, &CompileError{x, "unknown operator " + x.Op}
}

func (c *compiler) applyExpr(x Apply) (cexpr, error) {
	fn, args := spine(x)
	switch f := fn.(type) {
	case Sym:
		if len(args) != 1 {
			return cexpr{}, &CompileError{x, "condition test wants one register"}
		}
		if _, err := condTest(f.Name, 0, x); err != nil {
			return cexpr{}, &CompileError{x, "unknown condition test '" + f.Name}
		}
		arg, err := c.expr(args[0])
		if err != nil {
			return cexpr{}, err
		}
		name, at := f.Name, x
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			v, err := arg.eval(ctx)
			if err != nil {
				return 0, err
			}
			return condTest(name, v, at)
		}), nil
	case Ident:
		return c.builtinExpr(f.Name, args, x)
	default:
		return cexpr{}, &CompileError{x, "cannot apply non-function"}
	}
}

func (c *compiler) builtinExpr(name string, args []Node, at Node) (cexpr, error) {
	vals := make([]cexpr, len(args))
	for i, a := range args {
		v, err := c.expr(a)
		if err != nil {
			return cexpr{}, err
		}
		vals[i] = v
	}
	argc := func(n int) error {
		if len(vals) != n {
			return &CompileError{at, fmt.Sprintf("builtin %s wants %d arguments, got %d", name, n, len(vals))}
		}
		return nil
	}
	switch name {
	case "sex":
		switch len(args) {
		case 1:
			id, ok := UnwrapSeq(args[0]).(Ident)
			if !ok {
				return cexpr{}, &CompileError{at, "sex of non-field needs explicit width"}
			}
			w, ok := c.env.FieldWidth(id.Name)
			if !ok {
				return cexpr{}, &CompileError{at, "sex: unknown field " + id.Name}
			}
			return pure1(vals[0], func(v uint64) uint64 { return signExtend(v, w) }), nil
		case 2:
			return pure2(vals[0], vals[1], func(v, w uint64) uint64 { return signExtend(v, int(w)) }), nil
		}
		return cexpr{}, &CompileError{at, "sex wants 1 or 2 arguments"}
	case "sexb":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 { return signExtend(v, 8) }), nil
	case "sexh":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 { return signExtend(v, 16) }), nil
	case "shl":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 { return u32(uint32(a) << (b & 31)) }), nil
	case "shr":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 { return u32(uint32(a) >> (b & 31)) }), nil
	case "sar":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 {
			return uint64(int64(int32(uint32(a)) >> (b & 31)))
		}), nil
	case "cc_add":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 { return ccAdd(uint32(a), uint32(b)) }), nil
	case "cc_sub":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 { return ccSub(uint32(a), uint32(b)) }), nil
	case "cc_logic":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 { return ccLogic(uint32(v)) }), nil
	case "umul":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 { return u32(uint32(a * b)) }), nil
	case "smul":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(a, b uint64) uint64 {
			return u32(uint32(int32(uint32(a)) * int32(uint32(b))))
		}), nil
	case "udiv", "sdiv", "urem", "srem":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		op, l, r := name, vals[0], vals[1]
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			av, err := l.eval(ctx)
			if err != nil {
				return 0, err
			}
			bv, err := r.eval(ctx)
			if err != nil {
				return 0, err
			}
			a, b := uint32(av), uint32(bv)
			if b == 0 {
				return 0, &EvalError{at, "division by zero"}
			}
			switch op {
			case "udiv":
				return u32(a / b), nil
			case "urem":
				return u32(a % b), nil
			case "sdiv":
				return u32(uint32(int32(a) / int32(b))), nil
			default:
				return u32(uint32(int32(a) % int32(b))), nil
			}
		}), nil
	case "fadd":
		return c.fbin(vals, at, func(a, b float32) float32 { return a + b })
	case "fsub":
		return c.fbin(vals, at, func(a, b float32) float32 { return a - b })
	case "fmul":
		return c.fbin(vals, at, func(a, b float32) float32 { return a * b })
	case "fdiv":
		return c.fbin(vals, at, func(a, b float32) float32 { return a / b })
	case "fneg":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 {
			return u32(math.Float32bits(-math.Float32frombits(uint32(v))))
		}), nil
	case "fabs":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 {
			return u32(math.Float32bits(float32(math.Abs(float64(math.Float32frombits(uint32(v)))))))
		}), nil
	case "fcmp":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		return pure2(vals[0], vals[1], func(av, bv uint64) uint64 {
			a := math.Float32frombits(uint32(av))
			b := math.Float32frombits(uint32(bv))
			var fcc uint64
			switch {
			case a != a || b != b: // NaN
				fcc = 3 // unordered
			case a < b:
				fcc = 1
			case a > b:
				fcc = 2
			default:
				fcc = 0
			}
			return fcc << 10
		}), nil
	case "fitos":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 {
			return u32(math.Float32bits(float32(int32(uint32(v)))))
		}), nil
	case "fstoi":
		if err := argc(1); err != nil {
			return cexpr{}, err
		}
		return pure1(vals[0], func(v uint64) uint64 {
			return u32(uint32(int32(math.Float32frombits(uint32(v)))))
		}), nil
	case "winsave", "winrestore":
		if err := argc(2); err != nil {
			return cexpr{}, err
		}
		n, a, b := name, vals[0], vals[1]
		return dynExpr(func(ctx *Ctx) (uint64, error) {
			av, err := a.eval(ctx)
			if err != nil {
				return 0, err
			}
			bv, err := b.eval(ctx)
			if err != nil {
				return 0, err
			}
			sm, ok := ctx.m.(SpecialMachine)
			if !ok {
				return 0, ErrDynamic
			}
			return 0, sm.Special(n, []uint64{av, bv})
		}), nil
	}
	return cexpr{}, &CompileError{at, "unknown builtin " + name}
}

func (c *compiler) fbin(vals []cexpr, at Node, f func(a, b float32) float32) (cexpr, error) {
	if len(vals) != 2 {
		return cexpr{}, &CompileError{at, "float builtin wants 2 arguments"}
	}
	return pure2(vals[0], vals[1], func(a, b uint64) uint64 {
		return u32(math.Float32bits(f(math.Float32frombits(uint32(a)), math.Float32frombits(uint32(b)))))
	}), nil
}

// pure1 builds a one-argument pure operation, folding constants.
func pure1(a cexpr, f func(uint64) uint64) cexpr {
	if a.isConst {
		return constExpr(f(a.val))
	}
	fn := a.fn
	return dynExpr(func(ctx *Ctx) (uint64, error) {
		v, err := fn(ctx)
		if err != nil {
			return 0, err
		}
		return f(v), nil
	})
}

// pure2 builds a two-argument pure operation, folding constants.
func pure2(a, b cexpr, f func(x, y uint64) uint64) cexpr {
	if a.isConst && b.isConst {
		return constExpr(f(a.val, b.val))
	}
	return dynExpr(func(ctx *Ctx) (uint64, error) {
		x, err := a.eval(ctx)
		if err != nil {
			return 0, err
		}
		y, err := b.eval(ctx)
		if err != nil {
			return 0, err
		}
		return f(x, y), nil
	})
}
