package rtl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds produced by the lexer.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokSym // 'name
	tokOp  // punctuation / operator
)

type token struct {
	kind tokKind
	text string
	val  int64
	pos  int // byte offset, for error reporting
	line int
}

// lexer tokenizes RTL / spawn-description source.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// multi-character operators, longest first.
var multiOps = []string{":=", "<<", ">>", "==", "!=", "<=", ">=", "&&", "||"}

// LexError reports a tokenization failure with position context.
type LexError struct {
	Line int
	Msg  string
}

func (e *LexError) Error() string { return fmt.Sprintf("rtl: line %d: %s", e.Line, e.Msg) }

// lex tokenizes src.  Comments run from "//" to end of line.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\'':
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && isIdentChar(rune(l.src[l.pos])) {
				l.pos++
			}
			if l.pos == start {
				return nil, &LexError{l.line, "empty quoted symbol"}
			}
			l.emit(tokSym, l.src[start:l.pos], 0, start)
		case isDigit(c):
			if err := l.lexNum(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentChar(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos], 0, start)
		default:
			if op := l.matchMultiOp(); op != "" {
				l.emit(tokOp, op, 0, l.pos)
				l.pos += len(op)
				break
			}
			if strings.ContainsRune("()[]{}+-*/%&|^~!<>=?:,;.\\@", rune(c)) {
				l.emit(tokOp, string(c), 0, l.pos)
				l.pos++
				break
			}
			return nil, &LexError{l.line, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	l.emit(tokEOF, "", 0, l.pos)
	return l.toks, nil
}

func (l *lexer) emit(kind tokKind, text string, val int64, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, val: val, pos: pos, line: l.line})
}

func (l *lexer) matchMultiOp() string {
	rest := l.src[l.pos:]
	for _, op := range multiOps {
		if strings.HasPrefix(rest, op) {
			return op
		}
	}
	return ""
}

func (l *lexer) lexNum() error {
	start := l.pos
	base := 10
	digits := "0123456789"
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		base, digits = 16, "0123456789abcdefABCDEF"
		l.pos += 2
	} else if strings.HasPrefix(l.src[l.pos:], "0b") || strings.HasPrefix(l.src[l.pos:], "0B") {
		base, digits = 2, "01"
		l.pos += 2
	}
	numStart := l.pos
	for l.pos < len(l.src) && strings.ContainsRune(digits, rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[numStart:l.pos]
	if text == "" {
		if base != 10 {
			return &LexError{l.line, "number prefix with no digits"}
		}
		text = "0"
	}
	v, err := strconv.ParseInt(text, base, 64)
	if err != nil {
		return &LexError{l.line, fmt.Sprintf("bad number %q: %v", l.src[start:l.pos], err)}
	}
	l.emit(tokNum, l.src[start:l.pos], v, start)
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentChar(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
