package rtl

import (
	"reflect"
	"testing"
)

// cloneTM copies a testMachine so the interpreter and the compiled
// program start from identical state.
func cloneTM(m *testMachine) *testMachine {
	n := newTestMachine()
	for k, v := range m.fields {
		n.fields[k] = v
	}
	for f, regs := range m.regs {
		n.regs[f] = map[int64]uint64{}
		for i, v := range regs {
			n.regs[f][i] = v
		}
	}
	for a, v := range m.mem {
		n.mem[a] = v
	}
	n.pc = m.pc
	return n
}

// sameTM compares the observable state of two test machines.
func sameTM(a, b *testMachine) bool {
	return reflect.DeepEqual(a.regs, b.regs) &&
		reflect.DeepEqual(a.mem, b.mem) &&
		a.npc == b.npc && a.hasNPC == b.hasNPC &&
		a.annul == b.annul &&
		reflect.DeepEqual(a.traps, b.traps)
}

// diffCompile runs src through Exec and through Compile+Run on clones
// of m and requires identical resulting state and error behaviour.
func diffCompile(t *testing.T, src string, m *testMachine) {
	t.Helper()
	n := parse(t, src)

	im := cloneTM(m)
	execErr := Exec(n, im)

	cm := cloneTM(m)
	prog, err := Compile(n, cm)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	var ctx Ctx
	runErr := prog.Run(cm, &ctx)

	if (execErr == nil) != (runErr == nil) {
		t.Fatalf("%q: exec err %v, compiled err %v", src, execErr, runErr)
	}
	if execErr == nil && !sameTM(im, cm) {
		t.Errorf("%q diverged:\nexec:     regs=%v mem=%v npc=%v/%v annul=%v traps=%v\ncompiled: regs=%v mem=%v npc=%v/%v annul=%v traps=%v",
			src,
			im.regs, im.mem, im.npc, im.hasNPC, im.annul, im.traps,
			cm.regs, cm.mem, cm.npc, cm.hasNPC, cm.annul, cm.traps)
	}
}

// TestCompileMatchesExec is the compiler's own differential test: a
// battery of RTL fragments covering every statement and expression
// form must behave identically interpreted and compiled.
func TestCompileMatchesExec(t *testing.T) {
	m := newTestMachine()
	m.fields["rd"] = 3
	m.fields["rs1"] = 1
	m.fields["rs2"] = 2
	m.fields["iflag"] = 1
	m.fields["simm13"] = 0x1fff // -1 after sign extension
	m.fields["aflag"] = 0
	m.pc = 100
	m.regs["R"][1] = 10
	m.regs["R"][2] = 20
	m.regs["R"][33] = 1 << 22 // PSR alias: Z set

	cases := []string{
		// assignment, arithmetic, field constants
		"R[rd] := 7 + 4",
		"R[rd] := R[rs1] * R[rs2] - 3",
		"R[rd] := R[rs1] / 3 + R[rs2] % 7",
		// operand-mux folding: iflag picks the immediate arm
		"t := iflag = 1 ? sex(simm13) : R[rs2] ; R[rd] := R[rs1] + t",
		// parallel read-before-commit (swap)
		"R[1] := R[2], R[2] := R[1]",
		// sequential temps
		"t := 5 ; u := t * t ; R[rd] := u + 1",
		// delayed pc through a temp
		"t := pc + 8 ; pc := t",
		// memory: value and address expressions, widths
		"M[R[1] + 4]{4} := R[2] ; R[rd] := M[R[1] + 4]{4}",
		"M[64]{2} := 0x1234 ; R[5] := M[64]{2}",
		// condition guards, both arms, annul
		"R[1] = 10 ? R[6] := 1 : R[6] := 2",
		"R[1] = 11 ? R[6] := 1 : R[6] := 2",
		"aflag = 1 ? annul",
		// condition-code syms against the PSR alias
		"tgt := pc + 16 ; ('e PSR) ? pc := tgt : (aflag = 1 ? annul)",
		"tgt := pc + 16 ; ('ne PSR) ? pc := tgt : (aflag = 1 ? annul)",
		// short-circuit logicals
		"R[6] := R[1] = 10 && R[2] = 20",
		"R[6] := R[1] = 99 || R[2] = 20",
		// unary ops and shifts
		"R[6] := -R[1] + ~R[2] + !R[1]",
		"R[6] := shl(R[2], 3) + shr(R[2], 1) + sar(sex(simm13), 2)",
		// builtins: sign extension, condition codes, mul/div
		"R[6] := sexb(0xff) + sexh(0x8000)",
		"PSR := cc_add(R[1], R[2])",
		"PSR := cc_sub(R[1], R[2])",
		"PSR := cc_logic(R[1])",
		"R[6] := umul(R[1], R[2]) ; R[7] := smul(R[1], sex(simm13))",
		"R[6] := udiv(R[2], R[1]) ; R[7] := srem(sex(simm13), 7)",
		// trap is immediate
		"trap(5)",
		// nested seq joins the enclosing step
		"(R[6] := 1 ; R[7] := R[6] + 1) ; R[8] := R[7] + 1",
	}
	for _, src := range cases {
		diffCompile(t, src, m)
	}
}

// TestCompileDivZeroParity checks that a runtime division by zero
// errors identically in both engines.
func TestCompileDivZeroParity(t *testing.T) {
	m := newTestMachine()
	m.regs["R"][1] = 5
	for _, src := range []string{
		"R[2] := R[1] / R[3]",
		"R[2] := R[1] % R[3]",
		"R[2] := udiv(R[1], R[3])",
		"R[2] := srem(R[1], R[3])",
	} {
		diffCompile(t, src, m)
	}
}

// TestCompileConstantFolding checks that field-specialized programs
// fold to the expected shape: a fully constant guard drops the dead
// arm, so the compiled program for the immediate form never touches
// the register file read it would otherwise need.
func TestCompileConstantFolding(t *testing.T) {
	m := newTestMachine()
	m.fields["iflag"] = 1
	m.fields["simm13"] = 42
	m.fields["rd"] = 3
	n := parse(t, "R[rd] := iflag = 1 ? sex(simm13) : R[rs2]")
	// rs2 is deliberately undefined: if the dead arm were compiled
	// eagerly as a dynamic read it would still work, but compiling
	// must not fail over the missing field.
	prog, err := Compile(n, m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var ctx Ctx
	if err := prog.Run(m, &ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.regs["R"][3] != 42 {
		t.Errorf("R[3] = %d, want 42", m.regs["R"][3])
	}
}

// TestCompileErrUnknownIdent checks that compiling semantics that
// reference an unresolvable name fails at compile time, not run time.
func TestCompileErrUnknownIdent(t *testing.T) {
	m := newTestMachine()
	if _, err := Compile(parse(t, "R[3] := nosuchfield + 1"), m); err == nil {
		t.Error("Compile accepted an unresolvable identifier")
	}
}
