package rtl

import (
	"errors"
	"fmt"
	"math"
)

// Machine is the environment an RTL semantic expression executes
// against.  The emulator supplies a live machine; spawn's static
// analyses supply restricted environments whose register and memory
// reads fail with ErrDynamic, which is how "is this target computable
// statically?" is asked.
type Machine interface {
	// Field returns the decoded value of an instruction field.
	Field(name string) (int64, bool)
	// FieldWidth returns a field's declared bit width.
	FieldWidth(name string) (int, bool)
	// RegAlias resolves a named register ("PSR", "Y") to a register
	// file and index.
	RegAlias(name string) (file string, idx int64, ok bool)
	// IsRegFile reports whether name denotes a register file ("R").
	IsRegFile(name string) bool
	// ReadReg reads a register.
	ReadReg(file string, idx int64) (uint64, error)
	// WriteReg writes a register.
	WriteReg(file string, idx int64, v uint64) error
	// ReadMem reads width bytes at addr (big-endian, zero-extended).
	ReadMem(addr uint64, width int) (uint64, error)
	// WriteMem writes the low width bytes of v at addr.
	WriteMem(addr uint64, width int, v uint64) error
	// PC returns the executing instruction's address.
	PC() uint64
	// SetPC establishes a control transfer; delayed transfers take
	// effect after one more instruction (the delay slot).
	SetPC(v uint64, delayed bool)
	// Annul suppresses execution of the following delay slot.
	Annul()
	// Trap raises a software trap.
	Trap(code uint64) error
}

// ErrDynamic is returned by restricted environments when an
// expression needs run-time state (register or memory contents).
var ErrDynamic = errors.New("rtl: value depends on run-time state")

// ExprEvaluator evaluates expressions against a Machine while
// carrying temporary bindings across calls.  Spawn's static analyses
// use it to step symbolically through semantic ASTs.
type ExprEvaluator struct{ ev *evaluator }

// NewExprEvaluator returns an expression evaluator over m.
func NewExprEvaluator(m Machine) *ExprEvaluator {
	return &ExprEvaluator{ev: &evaluator{m: m, temps: map[string]uint64{}}}
}

// Eval evaluates an expression.
func (e *ExprEvaluator) Eval(n Node) (uint64, error) { return e.ev.expr(n) }

// SetTemp binds a temporary visible to subsequent Eval calls.
func (e *ExprEvaluator) SetTemp(name string, v uint64) { e.ev.temps[name] = v }

// Machine returns the underlying environment.
func (e *ExprEvaluator) Machine() Machine { return e.ev.m }

// EvalError wraps evaluation failures with expression context.
type EvalError struct {
	Expr Node
	Msg  string
}

func (e *EvalError) Error() string { return fmt.Sprintf("rtl: eval %s: %s", e.Expr, e.Msg) }

type evaluator struct {
	m     Machine
	temps map[string]uint64
	step  int // current sequential step; >0 means "late" (delayed)
}

type pendingWrite struct {
	kind string // "reg", "mem", "pc"
	file string
	idx  int64
	addr uint64
	w    int
	val  uint64
}

// Exec executes a ground semantic statement list against m.
// Parallel operations within a step read all inputs before committing
// any register or memory writes; pc assignments in steps after the
// first are delayed transfers (paper §4: "the semicolon ... indicates
// that the first statement executes before the second, which overlaps
// the next instruction's execution").
func Exec(n Node, m Machine) error {
	ev := &evaluator{m: m, temps: map[string]uint64{}}
	seq, ok := n.(Seq)
	if !ok {
		seq = Seq{Steps: [][]Node{{n}}}
	}
	for i, step := range seq.Steps {
		ev.step = i
		var pend []pendingWrite
		for _, op := range step {
			p, err := ev.stmt(op)
			if err != nil {
				return err
			}
			pend = append(pend, p...)
		}
		for _, p := range pend {
			if err := ev.commit(p); err != nil {
				return err
			}
		}
	}
	return nil
}

func (ev *evaluator) commit(p pendingWrite) error {
	switch p.kind {
	case "reg":
		return ev.m.WriteReg(p.file, p.idx, p.val)
	case "mem":
		return ev.m.WriteMem(p.addr, p.w, p.val)
	case "pc":
		ev.m.SetPC(p.val, ev.step > 0)
		return nil
	}
	return &EvalError{nil, "unknown pending write kind " + p.kind}
}

// stmt evaluates one operation, returning writes to commit at the end
// of the current parallel step.  Effects (annul, trap, temporaries)
// apply immediately.
func (ev *evaluator) stmt(n Node) ([]pendingWrite, error) {
	switch x := UnwrapSeq(n).(type) {
	case Assign:
		val, err := ev.expr(x.RHS)
		if err != nil {
			return nil, err
		}
		return ev.assign(x.LHS, val)
	case Cond:
		c, err := ev.expr(x.C)
		if err != nil {
			return nil, err
		}
		if c != 0 {
			return ev.stmt(x.T)
		}
		if x.F != nil {
			return ev.stmt(x.F)
		}
		return nil, nil
	case Seq:
		// A nested parenthesized group inside a guard arm: its
		// operations join the current step.
		var pend []pendingWrite
		for _, step := range x.Steps {
			for _, op := range step {
				p, err := ev.stmt(op)
				if err != nil {
					return nil, err
				}
				pend = append(pend, p...)
			}
		}
		return pend, nil
	case Ident:
		if x.Name == "annul" {
			ev.m.Annul()
			return nil, nil
		}
		return nil, &EvalError{x, "identifier is not a statement"}
	case Apply:
		fn, args := spine(x)
		if id, ok := fn.(Ident); ok && id.Name == "trap" && len(args) == 1 {
			v, err := ev.expr(args[0])
			if err != nil {
				return nil, err
			}
			return nil, ev.m.Trap(v)
		}
		// Effectful builtins (register-window operations) evaluate
		// as expressions for their side effects.
		if _, err := ev.expr(x); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, &EvalError{n, "not a statement"}
	}
}

func (ev *evaluator) assign(lhs Node, val uint64) ([]pendingWrite, error) {
	switch t := UnwrapSeq(lhs).(type) {
	case Ident:
		if t.Name == "pc" {
			return []pendingWrite{{kind: "pc", val: val}}, nil
		}
		if file, idx, ok := ev.m.RegAlias(t.Name); ok {
			return []pendingWrite{{kind: "reg", file: file, idx: idx, val: val}}, nil
		}
		if _, isField := ev.m.Field(t.Name); isField {
			return nil, &EvalError{lhs, "cannot assign to instruction field " + t.Name}
		}
		// Local temporary; visible immediately.
		ev.temps[t.Name] = val
		return nil, nil
	case Index:
		base, ok := t.Base.(Ident)
		if !ok {
			return nil, &EvalError{lhs, "bad assignment target"}
		}
		if base.Name == "M" {
			addr, err := ev.expr(t.Elem)
			if err != nil {
				return nil, err
			}
			w, err := ev.widthOf(t)
			if err != nil {
				return nil, err
			}
			return []pendingWrite{{kind: "mem", addr: addr, w: w, val: val}}, nil
		}
		if !ev.m.IsRegFile(base.Name) {
			return nil, &EvalError{lhs, "unknown register file " + base.Name}
		}
		idx, err := ev.expr(t.Elem)
		if err != nil {
			return nil, err
		}
		return []pendingWrite{{kind: "reg", file: base.Name, idx: int64(idx), val: val}}, nil
	default:
		return nil, &EvalError{lhs, "bad assignment target"}
	}
}

func (ev *evaluator) widthOf(ix Index) (int, error) {
	if ix.Width == nil {
		return 4, nil
	}
	w, err := ev.expr(ix.Width)
	if err != nil {
		return 0, err
	}
	if w != 1 && w != 2 && w != 4 && w != 8 {
		return 0, &EvalError{ix, fmt.Sprintf("bad memory width %d", w)}
	}
	return int(w), nil
}

// expr evaluates an expression to a 64-bit value.  Signed quantities
// are carried as sign-extended uint64 bit patterns.
func (ev *evaluator) expr(n Node) (uint64, error) {
	switch x := UnwrapSeq(n).(type) {
	case Num:
		return uint64(x.Val), nil
	case Ident:
		return ev.ident(x)
	case Bin:
		return ev.bin(x)
	case Un:
		v, err := ev.expr(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "~":
			return ^v, nil
		case "!":
			return b2u(v == 0), nil
		}
		return 0, &EvalError{n, "unknown unary op " + x.Op}
	case Cond:
		c, err := ev.expr(x.C)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return ev.expr(x.T)
		}
		if x.F == nil {
			return 0, &EvalError{n, "conditional expression lacks else arm"}
		}
		return ev.expr(x.F)
	case Index:
		return ev.index(x)
	case Apply:
		return ev.apply(x)
	default:
		return 0, &EvalError{n, "not an expression"}
	}
}

func (ev *evaluator) ident(x Ident) (uint64, error) {
	if v, ok := ev.temps[x.Name]; ok {
		return v, nil
	}
	if v, ok := ev.m.Field(x.Name); ok {
		return uint64(v), nil
	}
	if x.Name == "pc" {
		return ev.m.PC(), nil
	}
	if file, idx, ok := ev.m.RegAlias(x.Name); ok {
		return ev.m.ReadReg(file, idx)
	}
	return 0, &EvalError{x, "unknown identifier"}
}

func (ev *evaluator) index(x Index) (uint64, error) {
	base, ok := x.Base.(Ident)
	if !ok {
		return 0, &EvalError{x, "bad indexed reference"}
	}
	if base.Name == "M" {
		addr, err := ev.expr(x.Elem)
		if err != nil {
			return 0, err
		}
		w, err := ev.widthOf(x)
		if err != nil {
			return 0, err
		}
		return ev.m.ReadMem(addr, w)
	}
	if !ev.m.IsRegFile(base.Name) {
		return 0, &EvalError{x, "unknown register file " + base.Name}
	}
	idx, err := ev.expr(x.Elem)
	if err != nil {
		return 0, err
	}
	return ev.m.ReadReg(base.Name, int64(idx))
}

func (ev *evaluator) bin(x Bin) (uint64, error) {
	l, err := ev.expr(x.L)
	if err != nil {
		return 0, err
	}
	// Short-circuit logical operators.
	switch x.Op {
	case "&&":
		if l == 0 {
			return 0, nil
		}
		r, err := ev.expr(x.R)
		if err != nil {
			return 0, err
		}
		return b2u(r != 0), nil
	case "||":
		if l != 0 {
			return 1, nil
		}
		r, err := ev.expr(x.R)
		if err != nil {
			return 0, err
		}
		return b2u(r != 0), nil
	}
	r, err := ev.expr(x.R)
	if err != nil {
		return 0, err
	}
	switch x.Op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, &EvalError{x, "division by zero"}
		}
		return uint64(int64(l) / int64(r)), nil
	case "%":
		if r == 0 {
			return 0, &EvalError{x, "division by zero"}
		}
		return uint64(int64(l) % int64(r)), nil
	case "&":
		return l & r, nil
	case "|":
		return l | r, nil
	case "^":
		return l ^ r, nil
	case "<<":
		return l << (r & 63), nil
	case ">>":
		return l >> (r & 63), nil
	case "==":
		return b2u(l == r), nil
	case "!=":
		return b2u(l != r), nil
	case "<":
		return b2u(int64(l) < int64(r)), nil
	case "<=":
		return b2u(int64(l) <= int64(r)), nil
	case ">":
		return b2u(int64(l) > int64(r)), nil
	case ">=":
		return b2u(int64(l) >= int64(r)), nil
	}
	return 0, &EvalError{x, "unknown operator " + x.Op}
}

// apply evaluates builtin applications and condition tests.
func (ev *evaluator) apply(x Apply) (uint64, error) {
	fn, args := spine(x)
	switch f := fn.(type) {
	case Sym:
		if len(args) != 1 {
			return 0, &EvalError{x, "condition test wants one register"}
		}
		v, err := ev.expr(args[0])
		if err != nil {
			return 0, err
		}
		return condTest(f.Name, v, x)
	case Ident:
		return ev.builtin(f.Name, args, x)
	default:
		return 0, &EvalError{x, "cannot apply non-function"}
	}
}

// spine flattens nested Apply nodes into the head function and its
// argument list.
func spine(n Node) (Node, []Node) {
	var args []Node
	for {
		a, ok := n.(Apply)
		if !ok {
			return n, args
		}
		args = append([]Node{a.Arg}, args...)
		n = a.Fn
	}
}

func (ev *evaluator) builtin(name string, args []Node, at Node) (uint64, error) {
	vals := make([]uint64, len(args))
	for i, a := range args {
		v, err := ev.expr(a)
		if err != nil {
			return 0, err
		}
		vals[i] = v
	}
	switch name {
	case "sex":
		// Sign-extend: sex(field) uses the field's declared width,
		// sex(x, w) extends from w bits.
		switch len(args) {
		case 1:
			id, ok := UnwrapSeq(args[0]).(Ident)
			if !ok {
				return 0, &EvalError{at, "sex of non-field needs explicit width"}
			}
			w, ok := ev.m.FieldWidth(id.Name)
			if !ok {
				return 0, &EvalError{at, "sex: unknown field " + id.Name}
			}
			return signExtend(vals[0], w), nil
		case 2:
			return signExtend(vals[0], int(vals[1])), nil
		}
		return 0, &EvalError{at, "sex wants 1 or 2 arguments"}
	case "sexb":
		return need(1, vals, at, func() uint64 { return signExtend(vals[0], 8) })
	case "sexh":
		return need(1, vals, at, func() uint64 { return signExtend(vals[0], 16) })
	case "shl":
		return need(2, vals, at, func() uint64 { return u32(uint32(vals[0]) << (vals[1] & 31)) })
	case "shr":
		return need(2, vals, at, func() uint64 { return u32(uint32(vals[0]) >> (vals[1] & 31)) })
	case "sar":
		return need(2, vals, at, func() uint64 { return uint64(int64(int32(uint32(vals[0])) >> (vals[1] & 31))) })
	case "cc_add":
		return need(2, vals, at, func() uint64 { return ccAdd(uint32(vals[0]), uint32(vals[1])) })
	case "cc_sub":
		return need(2, vals, at, func() uint64 { return ccSub(uint32(vals[0]), uint32(vals[1])) })
	case "cc_logic":
		return need(1, vals, at, func() uint64 { return ccLogic(uint32(vals[0])) })
	case "umul":
		return need(2, vals, at, func() uint64 { return u32(uint32(vals[0] * vals[1])) })
	case "smul":
		return need(2, vals, at, func() uint64 {
			return u32(uint32(int32(uint32(vals[0])) * int32(uint32(vals[1]))))
		})
	case "udiv", "sdiv", "urem", "srem":
		if len(vals) != 2 {
			return 0, &EvalError{at, name + " wants 2 arguments"}
		}
		if uint32(vals[1]) == 0 {
			return 0, &EvalError{at, "division by zero"}
		}
		a, b := uint32(vals[0]), uint32(vals[1])
		switch name {
		case "udiv":
			return u32(a / b), nil
		case "urem":
			return u32(a % b), nil
		case "sdiv":
			return u32(uint32(int32(a) / int32(b))), nil
		default:
			return u32(uint32(int32(a) % int32(b))), nil
		}
	case "fadd":
		return fbin(vals, at, func(a, b float32) float32 { return a + b })
	case "fsub":
		return fbin(vals, at, func(a, b float32) float32 { return a - b })
	case "fmul":
		return fbin(vals, at, func(a, b float32) float32 { return a * b })
	case "fdiv":
		return fbin(vals, at, func(a, b float32) float32 { return a / b })
	case "fneg":
		return need(1, vals, at, func() uint64 { return u32(math.Float32bits(-math.Float32frombits(uint32(vals[0])))) })
	case "fabs":
		return need(1, vals, at, func() uint64 {
			return u32(math.Float32bits(float32(math.Abs(float64(math.Float32frombits(uint32(vals[0])))))))
		})
	case "fcmp":
		return need(2, vals, at, func() uint64 {
			a := math.Float32frombits(uint32(vals[0]))
			b := math.Float32frombits(uint32(vals[1]))
			var fcc uint64
			switch {
			case a != a || b != b: // NaN
				fcc = 3 // unordered
			case a < b:
				fcc = 1
			case a > b:
				fcc = 2
			default:
				fcc = 0
			}
			return fcc << 10
		})
	case "fitos":
		return need(1, vals, at, func() uint64 { return u32(math.Float32bits(float32(int32(uint32(vals[0]))))) })
	case "fstoi":
		return need(1, vals, at, func() uint64 { return u32(uint32(int32(math.Float32frombits(uint32(vals[0]))))) })
	case "winsave":
		return 0, ev.special("winsave", vals)
	case "winrestore":
		return 0, ev.special("winrestore", vals)
	}
	return 0, &EvalError{at, "unknown builtin " + name}
}

// special routes register-window operations through a side channel:
// environments that model windows implement SpecialMachine.
func (ev *evaluator) special(name string, vals []uint64) error {
	if sm, ok := ev.m.(SpecialMachine); ok {
		return sm.Special(name, vals)
	}
	return ErrDynamic
}

// SpecialMachine is implemented by environments that support
// machine-specific operations outside the core RTL model (SPARC
// register windows).
type SpecialMachine interface {
	Special(name string, args []uint64) error
}

func need(n int, vals []uint64, at Node, f func() uint64) (uint64, error) {
	if len(vals) != n {
		return 0, &EvalError{at, fmt.Sprintf("builtin wants %d arguments, got %d", n, len(vals))}
	}
	return f(), nil
}

func fbin(vals []uint64, at Node, f func(a, b float32) float32) (uint64, error) {
	return need(2, vals, at, func() uint64 {
		return u32(math.Float32bits(f(math.Float32frombits(uint32(vals[0])), math.Float32frombits(uint32(vals[1])))))
	})
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func u32(x uint32) uint64 { return uint64(x) }

func signExtend(v uint64, w int) uint64 {
	if w <= 0 || w >= 64 {
		return v
	}
	shift := 64 - uint(w)
	return uint64(int64(v<<shift) >> shift)
}

// ccAdd computes SPARC integer condition codes (NZVC in PSR bits
// 23:20) for the 32-bit addition a+b.
func ccAdd(a, b uint32) uint64 {
	r := a + b
	var icc uint64
	if r&0x80000000 != 0 {
		icc |= 8 // N
	}
	if r == 0 {
		icc |= 4 // Z
	}
	if (a^r)&(b^r)&0x80000000 != 0 {
		icc |= 2 // V
	}
	if (uint64(a)+uint64(b))>>32 != 0 {
		icc |= 1 // C
	}
	return icc << 20
}

// ccSub computes condition codes for the 32-bit subtraction a-b
// (C set on borrow, as SPARC subcc does).
func ccSub(a, b uint32) uint64 {
	r := a - b
	var icc uint64
	if r&0x80000000 != 0 {
		icc |= 8
	}
	if r == 0 {
		icc |= 4
	}
	if (a^b)&(a^r)&0x80000000 != 0 {
		icc |= 2
	}
	if b > a {
		icc |= 1
	}
	return icc << 20
}

// ccLogic computes condition codes for a logical result (V and C
// cleared).
func ccLogic(r uint32) uint64 {
	var icc uint64
	if r&0x80000000 != 0 {
		icc |= 8
	}
	if r == 0 {
		icc |= 4
	}
	return icc << 20
}

// condTest applies a quoted condition symbol to a condition-code
// register value.  Integer tests read NZVC from PSR bits 23:20;
// floating tests (f-prefixed) read fcc from FSR bits 11:10.
func condTest(name string, regVal uint64, at Node) (uint64, error) {
	if fn, ok := condTestFn(name); ok {
		return fn(regVal), nil
	}
	return 0, &EvalError{at, "unknown condition test '" + name}
}

// condTestFn resolves a condition symbol to a pure test function.
// The compiler binds the function once per instruction, so executed
// branches neither construct errors nor box AST context into an
// interface — condTest's signature did both, one heap allocation per
// dynamic condition evaluation in translated code.
func condTestFn(name string) (func(uint64) uint64, bool) {
	fn, ok := condTests[name]
	return fn, ok
}

// nzvc unpacks the integer condition codes from a PSR value.
func nzvc(r uint64) (n, z, v, c bool) {
	return r>>23&1 != 0, r>>22&1 != 0, r>>21&1 != 0, r>>20&1 != 0
}

var condTests = map[string]func(uint64) uint64{
	"a":   func(uint64) uint64 { return 1 },
	"n":   func(uint64) uint64 { return 0 },
	"ne":  func(r uint64) uint64 { _, z, _, _ := nzvc(r); return b2u(!z) },
	"e":   func(r uint64) uint64 { _, z, _, _ := nzvc(r); return b2u(z) },
	"g":   func(r uint64) uint64 { n, z, v, _ := nzvc(r); return b2u(!(z || (n != v))) },
	"le":  func(r uint64) uint64 { n, z, v, _ := nzvc(r); return b2u(z || (n != v)) },
	"ge":  func(r uint64) uint64 { n, _, v, _ := nzvc(r); return b2u(n == v) },
	"l":   func(r uint64) uint64 { n, _, v, _ := nzvc(r); return b2u(n != v) },
	"gu":  func(r uint64) uint64 { _, z, _, c := nzvc(r); return b2u(!(c || z)) },
	"leu": func(r uint64) uint64 { _, z, _, c := nzvc(r); return b2u(c || z) },
	"cc":  func(r uint64) uint64 { _, _, _, c := nzvc(r); return b2u(!c) },
	"cs":  func(r uint64) uint64 { _, _, _, c := nzvc(r); return b2u(c) },
	"pos": func(r uint64) uint64 { n, _, _, _ := nzvc(r); return b2u(!n) },
	"neg": func(r uint64) uint64 { n, _, _, _ := nzvc(r); return b2u(n) },
	"vc":  func(r uint64) uint64 { _, _, v, _ := nzvc(r); return b2u(!v) },
	"vs":  func(r uint64) uint64 { _, _, v, _ := nzvc(r); return b2u(v) },
}

func init() {
	for name, set := range fccSets {
		s := set
		condTests[name] = func(r uint64) uint64 {
			fcc := (r >> 10) & 3
			return b2u(s&(1<<fcc) != 0)
		}
	}
}

// fccSets maps floating-point branch conditions to the set of fcc
// values (bit i set ⇒ true when fcc==i; 0=E 1=L 2=G 3=U) on which
// the branch is taken.
var fccSets = map[string]uint{
	"fn":   0b0000,
	"fu":   0b1000,
	"fg":   0b0100,
	"fug":  0b1100,
	"fl":   0b0010,
	"ful":  0b1010,
	"flg":  0b0110,
	"fne":  0b1110,
	"fe":   0b0001,
	"fue":  0b1001,
	"fge":  0b0101,
	"fuge": 0b1101,
	"fle":  0b0011,
	"fule": 0b1011,
	"fo":   0b0111,
	"fa":   0b1111,
}
