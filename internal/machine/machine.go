// Package machine defines EEL's machine-independent instruction
// abstraction (paper §3.4).  An Inst is an architecture-neutral
// description of one machine instruction: its functional category,
// the registers it reads and writes, its memory behaviour, its
// internal control flow (delay slots and annulment), and — when the
// instruction is a direct control transfer — its target address.
//
// Tools analyze Inst values in place of raw machine words, so the
// same analysis code runs unmodified on any architecture for which a
// spawn description exists (SPARC and a MIPS-like machine in this
// repository).
package machine

import "fmt"

// Reg names a machine register in a flat, machine-independent space.
// The integer register file occupies [0, 32); special registers and
// the floating-point file occupy fixed slots above it so that a
// RegSet can represent any mixture as a bitset.
type Reg uint16

// Well-known register slots.  Concrete machines map their registers
// onto this space through their spawn description.
const (
	// RegY is the SPARC Y register (multiply/divide extension).
	RegY Reg = 32
	// RegPSR holds the integer condition codes (SPARC icc in
	// PSR bits 23:20).  Liveness tracks it like any other register,
	// which is what enables the Blizzard condition-code
	// optimization (paper §5).
	RegPSR Reg = 33
	// RegFSR holds the floating-point condition codes (fcc).
	RegFSR Reg = 34
	// RegPC is the program counter.
	RegPC Reg = 35
	// FloatBase is the first floating-point register; %fN maps to
	// FloatBase+N.
	FloatBase Reg = 64
	// NumRegs bounds the register space.
	NumRegs = 128
)

// IsInt reports whether r is a general-purpose integer register.
func (r Reg) IsInt() bool { return r < 32 }

// IsFloat reports whether r is a floating-point register.
func (r Reg) IsFloat() bool { return r >= FloatBase && r < FloatBase+32 }

// RegSet is a set of registers, represented as a 128-bit bitset.
// The zero value is the empty set.
type RegSet struct {
	lo, hi uint64
}

// Add returns the set with r added.
func (s RegSet) Add(r Reg) RegSet {
	if r < 64 {
		s.lo |= 1 << r
	} else if r < NumRegs {
		s.hi |= 1 << (r - 64)
	}
	return s
}

// Remove returns the set with r removed.
func (s RegSet) Remove(r Reg) RegSet {
	if r < 64 {
		s.lo &^= 1 << r
	} else if r < NumRegs {
		s.hi &^= 1 << (r - 64)
	}
	return s
}

// Has reports whether r is in the set.
func (s RegSet) Has(r Reg) bool {
	if r < 64 {
		return s.lo&(1<<r) != 0
	}
	if r < NumRegs {
		return s.hi&(1<<(r-64)) != 0
	}
	return false
}

// Union returns the union of s and t.
func (s RegSet) Union(t RegSet) RegSet { return RegSet{s.lo | t.lo, s.hi | t.hi} }

// Intersect returns the intersection of s and t.
func (s RegSet) Intersect(t RegSet) RegSet { return RegSet{s.lo & t.lo, s.hi & t.hi} }

// Minus returns s with every register of t removed.
func (s RegSet) Minus(t RegSet) RegSet { return RegSet{s.lo &^ t.lo, s.hi &^ t.hi} }

// IsEmpty reports whether the set contains no registers.
func (s RegSet) IsEmpty() bool { return s.lo == 0 && s.hi == 0 }

// Equal reports whether s and t contain the same registers.
func (s RegSet) Equal(t RegSet) bool { return s == t }

// Len returns the number of registers in the set.
func (s RegSet) Len() int { return popcount(s.lo) + popcount(s.hi) }

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// ForEach calls f for every register in the set, in increasing order.
func (s RegSet) ForEach(f func(Reg)) {
	for w, base := s.lo, Reg(0); ; w, base = s.hi, 64 {
		for x := w; x != 0; x &= x - 1 {
			f(base + Reg(trailingZeros(x)))
		}
		if base == 64 {
			return
		}
	}
}

// Regs returns the set's members as a sorted slice.
func (s RegSet) Regs() []Reg {
	out := make([]Reg, 0, s.Len())
	s.ForEach(func(r Reg) { out = append(out, r) })
	return out
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Words returns the set's raw 128-bit representation (for
// serialization; see RegSetFromWords).
func (s RegSet) Words() (lo, hi uint64) { return s.lo, s.hi }

// RegSetFromWords rebuilds a set from its Words representation.
func RegSetFromWords(lo, hi uint64) RegSet { return RegSet{lo: lo, hi: hi} }

// NewRegSet builds a set from the given registers.
func NewRegSet(regs ...Reg) RegSet {
	var s RegSet
	for _, r := range regs {
		s = s.Add(r)
	}
	return s
}

// String renders the set as {r0,r1,...} using raw slot numbers.
func (s RegSet) String() string {
	out := "{"
	first := true
	s.ForEach(func(r Reg) {
		if !first {
			out += ","
		}
		first = false
		out += fmt.Sprintf("r%d", r)
	})
	return out + "}"
}

// Category classifies an instruction's behaviour (paper §3.4).  The
// categories are common to RISC machines, so tools dispatch on them
// instead of on machine opcodes.
type Category int

// Instruction categories.
const (
	// CatInvalid marks a word that decodes to no instruction — in
	// EEL's analysis, reachable invalid words mean "this routine
	// contains data" (paper §3.1 step 4).
	CatInvalid Category = iota
	// CatCompute is an ordinary computation (ALU, FPU, ...).
	CatCompute
	// CatBranch is a conditional pc-relative control transfer.
	CatBranch
	// CatJumpDirect is an unconditional transfer whose target is
	// computable from the instruction alone.
	CatJumpDirect
	// CatJumpIndirect is an unconditional transfer through one or
	// more registers (e.g. SPARC jmpl).
	CatJumpIndirect
	// CatCallDirect is a direct subroutine call.
	CatCallDirect
	// CatCallIndirect is a call through a register.
	CatCallIndirect
	// CatReturn is a subroutine return.
	CatReturn
	// CatLoad reads memory.
	CatLoad
	// CatStore writes memory.
	CatStore
	// CatLoadStore both reads and writes memory (e.g. swap or an
	// autoincrement access; paper §3.4 derives such spanning
	// categories by combining classes).
	CatLoadStore
	// CatSystem is a trap / system call.
	CatSystem
)

var catNames = [...]string{
	CatInvalid:      "invalid",
	CatCompute:      "compute",
	CatBranch:       "branch",
	CatJumpDirect:   "jump",
	CatJumpIndirect: "ijump",
	CatCallDirect:   "call",
	CatCallIndirect: "icall",
	CatReturn:       "return",
	CatLoad:         "load",
	CatStore:        "store",
	CatLoadStore:    "loadstore",
	CatSystem:       "system",
}

// String returns the category's short name.
func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return fmt.Sprintf("cat(%d)", int(c))
}

// IsControl reports whether the category transfers control.
func (c Category) IsControl() bool {
	switch c {
	case CatBranch, CatJumpDirect, CatJumpIndirect, CatCallDirect, CatCallIndirect, CatReturn:
		return true
	}
	return false
}

// IsCall reports whether the category is a subroutine call.
func (c Category) IsCall() bool { return c == CatCallDirect || c == CatCallIndirect }

// IsMemory reports whether the category touches memory.
func (c Category) IsMemory() bool {
	return c == CatLoad || c == CatStore || c == CatLoadStore
}

// Inst is one machine-independent instruction.  To reproduce the
// paper's allocation optimization (§3.4: "EEL allocates only one
// instruction to represent all instances of a particular machine
// instruction", reducing allocations ≈4×), decoders intern Inst
// values by machine word: every occurrence of the same 32-bit word
// shares one *Inst.  Inst is therefore immutable after decoding and
// carries no per-address state; position-dependent questions (such
// as a branch target) take the pc as an argument.
type Inst struct {
	word   uint32
	name   string
	cat    Category
	reads  RegSet
	writes RegSet

	readsMem  bool
	writesMem bool
	memWidth  int

	delaySlots  int
	annulBit    bool
	conditional bool

	// target computes the instruction's static target given its
	// address; ok is false for indirect transfers.
	target func(pc uint32) (uint32, bool)

	// fields holds the decoded instruction-field values (rd, rs1,
	// simm13, ...) for machine-specific glue and snippet editing.
	fields []Field

	// sem is an opaque handle on the instruction's register-transfer
	// semantics, consumed by the emulator.  Analyses never touch it.
	sem any
}

// Field is one decoded instruction field.
type Field struct {
	Name string
	Val  uint32
}

// InstSpec carries everything a decoder derived for an instruction
// word; NewInst freezes it into an immutable Inst.
type InstSpec struct {
	Word        uint32
	Name        string
	Cat         Category
	Reads       RegSet
	Writes      RegSet
	ReadsMem    bool
	WritesMem   bool
	MemWidth    int
	DelaySlots  int
	AnnulBit    bool
	Conditional bool
	Target      func(pc uint32) (uint32, bool)
	Fields      []Field
	Sem         any
}

// NewInst builds an immutable instruction from a decoder's spec.
func NewInst(spec InstSpec) *Inst {
	return &Inst{
		word:        spec.Word,
		name:        spec.Name,
		cat:         spec.Cat,
		reads:       spec.Reads,
		writes:      spec.Writes,
		readsMem:    spec.ReadsMem,
		writesMem:   spec.WritesMem,
		memWidth:    spec.MemWidth,
		delaySlots:  spec.DelaySlots,
		annulBit:    spec.AnnulBit,
		conditional: spec.Conditional,
		target:      spec.Target,
		fields:      spec.Fields,
		sem:         spec.Sem,
	}
}

// Word returns the raw machine word.
func (i *Inst) Word() uint32 { return i.word }

// Name returns the mnemonic ("add", "bne", "jmpl", ...), or "" for
// invalid words.
func (i *Inst) Name() string { return i.name }

// Category returns the instruction's functional category.
func (i *Inst) Category() Category { return i.cat }

// Reads returns the registers the instruction reads.
func (i *Inst) Reads() RegSet { return i.reads }

// Writes returns the registers the instruction writes.
func (i *Inst) Writes() RegSet { return i.writes }

// ReadsMem reports whether the instruction loads from memory.
func (i *Inst) ReadsMem() bool { return i.readsMem }

// WritesMem reports whether the instruction stores to memory.
func (i *Inst) WritesMem() bool { return i.writesMem }

// MemWidth returns the access width in bytes (paper Fig 6 {{WIDTH}}),
// or 0 for non-memory instructions.
func (i *Inst) MemWidth() int { return i.memWidth }

// DelaySlots returns the number of delay slots the instruction
// executes before transferring control (0 or 1 on SPARC/MIPS).
func (i *Inst) DelaySlots() int { return i.delaySlots }

// AnnulBit reports whether the instruction's annul bit is set: a
// conditional branch with the bit set executes its delay slot only
// when taken; an unconditional one never executes it (paper §3.3).
func (i *Inst) AnnulBit() bool { return i.annulBit }

// Conditional reports whether the control transfer is conditional.
func (i *Inst) Conditional() bool { return i.conditional }

// StaticTarget returns the transfer target for an instruction at pc,
// when it is statically computable (direct branches, calls, and
// jumps).  ok is false for indirect transfers and non-transfers.
func (i *Inst) StaticTarget(pc uint32) (target uint32, ok bool) {
	if i.target == nil {
		return 0, false
	}
	return i.target(pc)
}

// Field returns the named decoded instruction field.
func (i *Inst) Field(name string) (uint32, bool) {
	for _, f := range i.fields {
		if f.Name == name {
			return f.Val, true
		}
	}
	return 0, false
}

// Fields returns all decoded fields.
func (i *Inst) Fields() []Field { return i.fields }

// Sem returns the decoder's opaque semantics handle (used by the
// emulator to execute the instruction).
func (i *Inst) Sem() any { return i.sem }

// Valid reports whether the word decoded to a real instruction.
func (i *Inst) Valid() bool { return i.cat != CatInvalid }

// IsAnnulledUncond reports whether this is an unconditional transfer
// that annuls (never executes) its delay slot, such as SPARC "ba,a".
func (i *Inst) IsAnnulledUncond() bool {
	return i.annulBit && !i.conditional && i.cat.IsControl()
}

// String renders a compact description for debugging.
func (i *Inst) String() string {
	if !i.Valid() {
		return fmt.Sprintf("invalid(%#08x)", i.word)
	}
	return fmt.Sprintf("%s(%#08x)", i.name, i.word)
}

// Decoder turns machine words into shared Inst values and names the
// machine's registers.  It is the whole machine-specific surface the
// architecture-independent layers see.
type Decoder interface {
	// Decode returns the (interned) instruction for word.
	Decode(word uint32) *Inst
	// RegName renders a register in the machine's assembly syntax.
	RegName(r Reg) string
	// WordSize returns the instruction width in bytes.
	WordSize() int
	// Name identifies the machine ("sparc", "mips32e", ...).
	Name() string
}
