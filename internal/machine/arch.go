package machine

import (
	"fmt"
	"sort"
	"sync"
)

// TrapModel describes a machine's software-trap system-call ABI: which
// trap() code selects the syscall handler, which integer register
// carries the call number, where the arguments and result live, and
// the call numbers the emulator implements.  The execution substrate
// consumes this instead of hard-coding one machine's convention.
type TrapModel struct {
	// Code is the trap() argument that means "system call" (SPARC
	// "ta 0" passes 0; Alpha call_pal passes its function code).
	Code uint64
	// NumReg is the integer register index holding the call number
	// (SPARC %g1, MIPS $v0, Alpha $v0).
	NumReg int
	// Args are the registers carrying the first three arguments
	// (SPARC %o0..%o2, MIPS $a0..$a2, Alpha $a0..$a2).
	Args [3]int
	// Ret is the register receiving the result.
	Ret int
	// SysExit and SysWrite are the implemented call numbers.
	SysExit  uint32
	SysWrite uint32
}

// ArchInfo is the per-architecture configuration the machine-
// independent layers consume: how to build a decoder, the trap ABI,
// and which optional substrate tiers the architecture supports.
// Architecture packages register themselves from init(), so importing
// an architecture is all it takes to make it available by name.
type ArchInfo struct {
	// Name is the machine name as reported by Decoder.Name()
	// ("sparc", "mips32e", "alpha64e").
	Name string
	// Aliases are additional accepted lookup names (e.g. the short
	// "-isa" spellings "mips", "alpha").
	Aliases []string
	// NewDecoder builds a fresh decoder for the architecture.
	NewDecoder func() Decoder
	// Trap is the system-call ABI.
	Trap TrapModel
	// RoutineTier reports whether the whole-routine compilation tier
	// understands this architecture's control idioms.  The tier's
	// terminator lowering dispatches on machine branch semantics, so
	// it is enabled per-architecture rather than assumed.
	RoutineTier bool
	// Lockstep reports whether the differential interp-vs-JIT
	// oracles run for this architecture.
	Lockstep bool
}

var (
	archMu  sync.RWMutex
	arches  = map[string]*ArchInfo{}
	archVis []string // registration order of canonical names
)

// RegisterArch makes info available through ArchByName.  It panics on
// a duplicate canonical name; architecture packages call it from
// init(), so a collision is a build bug.
func RegisterArch(info ArchInfo) {
	archMu.Lock()
	defer archMu.Unlock()
	if info.Name == "" || info.NewDecoder == nil {
		panic("machine: RegisterArch needs a name and a decoder constructor")
	}
	if _, dup := arches[info.Name]; dup {
		panic(fmt.Sprintf("machine: architecture %q registered twice", info.Name))
	}
	p := &info
	arches[info.Name] = p
	archVis = append(archVis, info.Name)
	for _, a := range info.Aliases {
		if _, dup := arches[a]; dup {
			panic(fmt.Sprintf("machine: architecture alias %q registered twice", a))
		}
		arches[a] = p
	}
}

// ArchByName looks up a registered architecture by canonical name or
// alias.
func ArchByName(name string) (*ArchInfo, bool) {
	archMu.RLock()
	defer archMu.RUnlock()
	a, ok := arches[name]
	return a, ok
}

// ArchNames returns the canonical names of all registered
// architectures, sorted.
func ArchNames() []string {
	archMu.RLock()
	defer archMu.RUnlock()
	out := append([]string(nil), archVis...)
	sort.Strings(out)
	return out
}
