package machine

import (
	"testing"
	"testing/quick"
)

// regsOf builds a set from raw values (mod NumRegs).
func regsOf(vals []uint16) RegSet {
	var s RegSet
	for _, v := range vals {
		s = s.Add(Reg(v % NumRegs))
	}
	return s
}

func TestRegSetBasics(t *testing.T) {
	var s RegSet
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	s = s.Add(3).Add(64).Add(127)
	if !s.Has(3) || !s.Has(64) || !s.Has(127) || s.Has(4) {
		t.Errorf("membership broken: %s", s)
	}
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
	s = s.Remove(64)
	if s.Has(64) || s.Len() != 2 {
		t.Errorf("remove broken: %s", s)
	}
	// Out-of-range adds are ignored.
	if !s.Add(200).Equal(s) {
		t.Error("out-of-range add changed the set")
	}
}

func TestRegSetSetLaws(t *testing.T) {
	type vecs struct{ A, B, C []uint16 }
	f := func(v vecs) bool {
		a, b, c := regsOf(v.A), regsOf(v.B), regsOf(v.C)
		// Commutativity and associativity of union.
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		// De Morgan-ish: (a ∪ b) \ c == (a\c) ∪ (b\c).
		if !a.Union(b).Minus(c).Equal(a.Minus(c).Union(b.Minus(c))) {
			return false
		}
		// Intersection distributes over union.
		if !a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c))) {
			return false
		}
		// x ∈ a∪b iff x ∈ a or x ∈ b (spot-check via Len bounds).
		u := a.Union(b)
		if u.Len() > a.Len()+b.Len() || u.Len() < a.Len() || u.Len() < b.Len() {
			return false
		}
		// a \ a is empty; a ∩ a is a.
		return a.Minus(a).IsEmpty() && a.Intersect(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegSetForEachOrdered(t *testing.T) {
	s := NewRegSet(5, 1, 127, 64, 63)
	var got []Reg
	s.ForEach(func(r Reg) { got = append(got, r) })
	want := []Reg{1, 5, 63, 64, 127}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	regs := s.Regs()
	for i := range want {
		if regs[i] != want[i] {
			t.Fatalf("Regs() = %v", regs)
		}
	}
}

func TestRegPredicates(t *testing.T) {
	if !Reg(0).IsInt() || Reg(32).IsInt() {
		t.Error("IsInt broken")
	}
	if !FloatBase.IsFloat() || Reg(31).IsFloat() || Reg(FloatBase+32).IsFloat() {
		t.Error("IsFloat broken")
	}
}

func TestCategoryPredicates(t *testing.T) {
	controls := []Category{CatBranch, CatJumpDirect, CatJumpIndirect, CatCallDirect, CatCallIndirect, CatReturn}
	for _, c := range controls {
		if !c.IsControl() {
			t.Errorf("%s should be control", c)
		}
	}
	for _, c := range []Category{CatCompute, CatLoad, CatStore, CatSystem, CatInvalid} {
		if c.IsControl() {
			t.Errorf("%s should not be control", c)
		}
	}
	if !CatCallDirect.IsCall() || CatJumpDirect.IsCall() {
		t.Error("IsCall broken")
	}
	for _, c := range []Category{CatLoad, CatStore, CatLoadStore} {
		if !c.IsMemory() {
			t.Errorf("%s should be memory", c)
		}
	}
	if CatCompute.IsMemory() {
		t.Error("compute is not memory")
	}
}

func TestInstAccessors(t *testing.T) {
	inst := NewInst(InstSpec{
		Word:        0x12345678,
		Name:        "frob",
		Cat:         CatBranch,
		Reads:       NewRegSet(1, 2),
		Writes:      NewRegSet(3),
		MemWidth:    0,
		DelaySlots:  1,
		AnnulBit:    true,
		Conditional: true,
		Target:      func(pc uint32) (uint32, bool) { return pc + 8, true },
		Fields:      []Field{{Name: "rd", Val: 3}},
	})
	if inst.Word() != 0x12345678 || inst.Name() != "frob" {
		t.Error("basic accessors")
	}
	if !inst.Valid() {
		t.Error("branch should be valid")
	}
	if tgt, ok := inst.StaticTarget(100); !ok || tgt != 108 {
		t.Errorf("target = %d ok=%v", tgt, ok)
	}
	if v, ok := inst.Field("rd"); !ok || v != 3 {
		t.Errorf("field = %d ok=%v", v, ok)
	}
	if _, ok := inst.Field("nope"); ok {
		t.Error("phantom field")
	}
	if inst.IsAnnulledUncond() {
		t.Error("conditional branch is not annulled-unconditional")
	}
	uncond := NewInst(InstSpec{Cat: CatJumpDirect, AnnulBit: true})
	if !uncond.IsAnnulledUncond() {
		t.Error("ba,a-like should be annulled-unconditional")
	}
	invalid := NewInst(InstSpec{Word: 0})
	if invalid.Valid() {
		t.Error("zero spec should be invalid")
	}
	if _, ok := invalid.StaticTarget(0); ok {
		t.Error("invalid has no target")
	}
}
