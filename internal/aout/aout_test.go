package aout

import (
	"testing"
	"testing/quick"

	"eel/internal/binfile"
)

func sample() *binfile.File {
	return &binfile.File{
		Format: FormatName,
		Entry:  0x10000,
		Sections: []binfile.Section{
			{Name: "text", Addr: 0x10000, Data: []byte{1, 2, 3, 4}},
			{Name: "data", Addr: 0x20000, Data: []byte{9}},
		},
		Symbols: []binfile.Symbol{
			{Name: "main", Addr: 0x10000, Size: 4, Kind: binfile.SymFunc, Global: true},
			{Name: ".L1", Addr: 0x10004, Kind: binfile.SymDebug},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	img, err := (format{}).Write(sample())
	if err != nil {
		t.Fatal(err)
	}
	if !(format{}).Detect(img) {
		t.Fatal("own image not detected")
	}
	got, err := (format{}).Read(img)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if got.Entry != want.Entry || len(got.Sections) != 2 || len(got.Symbols) != 2 {
		t.Fatalf("shape: %+v", got)
	}
	if got.Text() == nil || string(got.Text().Data) != string(want.Text().Data) {
		t.Error("text mismatch")
	}
	if got.Symbols[0].Name != "main" || got.Symbols[0].Kind != binfile.SymFunc || !got.Symbols[0].Global {
		t.Errorf("symbol 0: %+v", got.Symbols[0])
	}
	if got.Symbols[1].Kind != binfile.SymDebug || got.Symbols[1].Global {
		t.Errorf("symbol 1: %+v", got.Symbols[1])
	}
}

func TestTruncationsRejected(t *testing.T) {
	img, _ := (format{}).Write(sample())
	for n := 0; n < len(img); n += 3 {
		if _, err := (format{}).Read(img[:n]); err == nil {
			t.Errorf("accepted %d-byte truncation", n)
		}
	}
}

func TestReadNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		// Prepend the magic half the time so parsing gets past
		// detection and exercises deeper paths.
		if len(data) > 0 && data[0]&1 == 0 {
			data = append([]byte{0x57, 0x45, 0x58, 0x45, 0, 0, 0, 1}, data...)
		}
		_, _ = (format{}).Read(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestImplausibleCountsRejected(t *testing.T) {
	// magic, version, entry, huge nsect
	img := []byte{
		0x57, 0x45, 0x58, 0x45,
		0, 0, 0, 1,
		0, 1, 0, 0,
		0xff, 0xff, 0xff, 0xff, // nsect
		0, 0, 0, 0,
	}
	if _, err := (format{}).Read(img); err == nil {
		t.Error("accepted absurd section count")
	}
}
