package aout

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// corrupt returns img with the big-endian u32 at off replaced.
func corrupt(img []byte, off int, v uint32) []byte {
	out := append([]byte(nil), img...)
	binary.BigEndian.PutUint32(out[off:], v)
	return out
}

// FuzzAoutRead feeds arbitrary bytes to the a.out reader.  The reader
// must never panic: malformed input returns an error.  Images that do
// parse must survive a Write/Read round trip unchanged.
func FuzzAoutRead(f *testing.F) {
	img, err := (format{}).Write(sample())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:8])
	f.Add([]byte{})
	// Header-count corruption: section count at offset 12, symbol
	// count at 16 (overflow bait for the bounds checks).
	f.Add(corrupt(img, 12, 0xffffffff))
	f.Add(corrupt(img, 16, 0xffffffff))
	f.Add(corrupt(img, 12, 64))
	// First section's addr/size words (offsets 20: namelen, 24+len:
	// addr): oversized size and wrapping addr.
	f.Add(corrupt(img, 32, 0xfffffff0))
	f.Add(corrupt(img, 28, 0xfffffffc))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := (format{}).Read(data)
		if err != nil {
			return
		}
		rewritten, err := (format{}).Write(parsed)
		if err != nil {
			t.Fatalf("parsed image fails to rewrite: %v", err)
		}
		again, err := (format{}).Read(rewritten)
		if err != nil {
			t.Fatalf("rewritten image fails to reparse: %v", err)
		}
		if again.Entry != parsed.Entry ||
			len(again.Sections) != len(parsed.Sections) ||
			len(again.Symbols) != len(parsed.Symbols) {
			t.Fatalf("round trip changed shape: %+v vs %+v", parsed, again)
		}
		for i := range parsed.Sections {
			a, b := parsed.Sections[i], again.Sections[i]
			if a.Name != b.Name || a.Addr != b.Addr || !bytes.Equal(a.Data, b.Data) {
				t.Fatalf("round trip changed section %d", i)
			}
		}
		for i := range parsed.Symbols {
			if parsed.Symbols[i] != again.Symbols[i] {
				t.Fatalf("round trip changed symbol %d", i)
			}
		}
	})
}

// TestReadOverflowingImages pins the malformed images the fuzz
// targets found or were hardened against: each must produce an error,
// not a panic or a bogus parse.
func TestReadOverflowingImages(t *testing.T) {
	img, err := (format{}).Write(sample())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"counts exceed image", corrupt(img, 16, 1<<21)},
		{"section count over cap", corrupt(img, 12, 1<<30)},
		{"symbol count over cap", corrupt(img, 16, 1<<30)},
		{"section size past end", corrupt(img, 32, 0xfffffff0)},
		{"section wraps address space", func() []byte {
			f := sample()
			f.Sections[0].Addr = 0xfffffffc
			out, err := (format{}).Write(f)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := (format{}).Read(tc.data); err == nil {
				t.Errorf("malformed image accepted")
			}
		})
	}
}
