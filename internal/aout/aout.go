// Package aout implements a simple a.out-style executable container:
// a fixed big-endian header, length-prefixed sections, and a flat
// symbol table.  It stands in for the SunOS a.out format the paper's
// system consumed, and registers itself with binfile.
package aout

import (
	"encoding/binary"
	"fmt"

	"eel/internal/binfile"
)

// Magic identifies an a.out-style image ("WEXE").
const Magic = 0x57455845

const version = 1

type format struct{}

func init() { binfile.RegisterFormat(format{}) }

// FormatName is the name this format registers under.
const FormatName = "aout"

func (format) Name() string { return FormatName }

func (format) Detect(data []byte) bool {
	return len(data) >= 8 && binary.BigEndian.Uint32(data) == Magic
}

// Layout:
//
//	u32 magic, u32 version, u32 entry, u32 nsections, u32 nsymbols
//	per section: u32 namelen, name bytes, u32 addr, u32 size, data
//	per symbol:  u32 namelen, name bytes, u32 addr, u32 size,
//	             u8 kind, u8 global
type reader struct {
	data []byte
	off  int
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, fmt.Errorf("aout: truncated at offset %d", r.off)
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u8() (byte, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("aout: truncated at offset %d", r.off)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *reader) bytes(n uint32) ([]byte, error) {
	if uint32(len(r.data)-r.off) < n {
		return nil, fmt.Errorf("aout: truncated at offset %d (want %d bytes)", r.off, n)
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("aout: implausible name length %d", n)
	}
	b, err := r.bytes(n)
	return string(b), err
}

func (format) Read(data []byte) (*binfile.File, error) {
	r := &reader{data: data}
	magic, err := r.u32()
	if err != nil || magic != Magic {
		return nil, fmt.Errorf("aout: bad magic")
	}
	if v, err := r.u32(); err != nil || v != version {
		return nil, fmt.Errorf("aout: unsupported version")
	}
	f := &binfile.File{Format: FormatName}
	if f.Entry, err = r.u32(); err != nil {
		return nil, err
	}
	nsect, err := r.u32()
	if err != nil {
		return nil, err
	}
	nsym, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nsect > 64 || nsym > 1<<22 {
		return nil, fmt.Errorf("aout: implausible counts (%d sections, %d symbols)", nsect, nsym)
	}
	// Each section needs at least 12 bytes and each symbol at least
	// 14; reject overflowing counts against the remaining input up
	// front instead of discovering the truncation one record at a
	// time.
	if uint64(nsect)*12+uint64(nsym)*14 > uint64(len(data)-r.off) {
		return nil, fmt.Errorf("aout: counts exceed image size (%d sections, %d symbols)", nsect, nsym)
	}
	for i := uint32(0); i < nsect; i++ {
		var s binfile.Section
		if s.Name, err = r.str(); err != nil {
			return nil, err
		}
		if s.Addr, err = r.u32(); err != nil {
			return nil, err
		}
		size, err := r.u32()
		if err != nil {
			return nil, err
		}
		// >= rather than >: a section ending exactly at 2^32 still
		// wraps binfile.Section.End() to zero.
		if uint64(s.Addr)+uint64(size) >= 1<<32 {
			return nil, fmt.Errorf("aout: section %q wraps the address space", s.Name)
		}
		raw, err := r.bytes(size)
		if err != nil {
			return nil, err
		}
		s.Data = append([]byte(nil), raw...)
		f.Sections = append(f.Sections, s)
	}
	for i := uint32(0); i < nsym; i++ {
		var sym binfile.Symbol
		if sym.Name, err = r.str(); err != nil {
			return nil, err
		}
		if sym.Addr, err = r.u32(); err != nil {
			return nil, err
		}
		if sym.Size, err = r.u32(); err != nil {
			return nil, err
		}
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		global, err := r.u8()
		if err != nil {
			return nil, err
		}
		sym.Kind = binfile.SymKind(kind)
		sym.Global = global != 0
		f.Symbols = append(f.Symbols, sym)
	}
	return f, nil
}

func (format) Write(f *binfile.File) ([]byte, error) {
	var out []byte
	u32 := func(v uint32) { out = binary.BigEndian.AppendUint32(out, v) }
	str := func(s string) { u32(uint32(len(s))); out = append(out, s...) }
	u32(Magic)
	u32(version)
	u32(f.Entry)
	u32(uint32(len(f.Sections)))
	u32(uint32(len(f.Symbols)))
	for _, s := range f.Sections {
		str(s.Name)
		u32(s.Addr)
		u32(uint32(len(s.Data)))
		out = append(out, s.Data...)
	}
	for _, sym := range f.Symbols {
		str(sym.Name)
		u32(sym.Addr)
		u32(sym.Size)
		out = append(out, byte(sym.Kind))
		if sym.Global {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out, nil
}
