package spawn

import (
	"errors"
	"fmt"

	"eel/internal/machine"
	"eel/internal/rtl"
)

// Effects summarizes what one instruction (a definition specialized
// by concrete field values) does to machine state.  Spawn derives it
// by walking the instruction's semantic AST, resolving guards whose
// conditions depend only on instruction fields (e.g. SPARC's
// register-or-immediate iflag) so the reported register sets are
// exact per machine word (paper §4: spawn "finds registers that each
// instruction reads and writes").
type Effects struct {
	Reads  machine.RegSet
	Writes machine.RegSet

	ReadsMem   bool
	WritesMem  bool
	ReadBytes  int
	WriteBytes int

	// WritesPC is true for control transfers; CondPC marks the pc
	// assignment as guarded by a run-time condition; LatePC marks it
	// as occurring after the first sequential step (a delayed
	// transfer).
	WritesPC bool
	CondPC   bool
	LatePC   bool

	// Link is the register assigned the instruction's own address
	// (the return-address link of calls); HasLink reports whether
	// one exists.
	Link    machine.Reg
	HasLink bool

	// Trap marks a software trap; Annul marks a reachable annul of
	// the following delay slot; Barrier marks window operations
	// (save/restore) that are treated as touching every integer
	// register.
	Trap    bool
	Annul   bool
	Barrier bool
}

// MemWidth returns the instruction's access width in bytes (paper
// Fig 6 {{WIDTH}}): the larger of bytes read and written.
func (e Effects) MemWidth() int {
	if e.ReadBytes > e.WriteBytes {
		return e.ReadBytes
	}
	return e.WriteBytes
}

// ClassInfo records the definition-level metadata derived during
// description compilation.
type ClassInfo struct {
	Cat        machine.Category
	DelaySlots int
	Effects    Effects
}

// analyze validates and classifies every instruction definition.
func (d *Desc) analyze() error {
	for _, def := range d.Insts {
		if def.Sem == nil {
			return fmt.Errorf("spawn: instruction %s has no semantics", def.Name)
		}
		eff := d.EffectsFor(def, def.Fixed)
		info := ClassInfo{Effects: eff}
		if eff.WritesPC && eff.LatePC {
			info.DelaySlots = 1
		}
		_, direct := d.StaticTarget(def, d.fixedAsFull(def), 0x1000)
		info.Cat = Categorize(eff, direct)
		def.Info = info
	}
	return nil
}

// fixedAsFull pads the fixed fields with zeros for every other field,
// giving a representative word's field values for definition-level
// classification.
func (d *Desc) fixedAsFull(def *InstDef) map[string]uint32 {
	out := make(map[string]uint32, len(d.Fields))
	for _, f := range d.Fields {
		out[f.Name] = 0
	}
	for k, v := range def.Fixed {
		out[k] = v
	}
	return out
}

// Categorize maps derived effects to a machine-independent category.
// The machine glue may refine the result (SPARC's jmpl overloads,
// paper Fig 6).
func Categorize(eff Effects, hasStaticTarget bool) machine.Category {
	switch {
	case eff.Trap:
		return machine.CatSystem
	case eff.WritesPC:
		if eff.CondPC {
			return machine.CatBranch
		}
		if eff.HasLink {
			if hasStaticTarget {
				return machine.CatCallDirect
			}
			return machine.CatCallIndirect
		}
		if hasStaticTarget {
			return machine.CatJumpDirect
		}
		return machine.CatJumpIndirect
	case eff.ReadsMem && eff.WritesMem:
		return machine.CatLoadStore
	case eff.ReadsMem:
		return machine.CatLoad
	case eff.WritesMem:
		return machine.CatStore
	default:
		return machine.CatCompute
	}
}

// MachineReg maps a description register reference to the flat
// machine-independent register space: the integer file starts at 0,
// the floating-point file at machine.FloatBase, and the scalar pc
// register at machine.RegPC.
func (d *Desc) MachineReg(file string, idx int64) (machine.Reg, bool) {
	rf, ok := d.fileByName[file]
	if !ok {
		return 0, false
	}
	if rf.Count == 0 { // scalar register, e.g. pc
		return machine.RegPC, true
	}
	if idx < 0 || idx >= int64(rf.Count) {
		return 0, false
	}
	if rf.Typ == "float" {
		return machine.FloatBase + machine.Reg(idx), true
	}
	return machine.Reg(idx), true
}

// isZeroReg reports whether (file, idx) is the hardwired zero.
func (d *Desc) isZeroReg(file string, idx int64) bool {
	return d.HasZero && file == d.ZeroFile && idx == d.ZeroIndex
}

// allIntRegs returns every integer register plus condition codes,
// the conservative footprint of window operations.
func (d *Desc) allIntRegs() machine.RegSet {
	var s machine.RegSet
	for _, rf := range d.Files {
		if rf.Typ != "integer" || rf.Count == 0 {
			continue
		}
		for i := 0; i < rf.Count; i++ {
			if d.isZeroReg(rf.Name, int64(i)) {
				continue
			}
			if r, ok := d.MachineReg(rf.Name, int64(i)); ok {
				s = s.Add(r)
			}
		}
	}
	return s
}

// fieldMachine is an rtl.Machine restricted to instruction fields
// (and optionally pc and the zero register): reads of any other
// machine state return rtl.ErrDynamic.  It is how spawn asks "is
// this value computable without running the program?".
type fieldMachine struct {
	d       *Desc
	fields  map[string]uint32
	pc      uint64
	pcKnown bool
	zeroOK  bool
}

func (m *fieldMachine) Field(name string) (int64, bool) {
	v, ok := m.fields[name]
	return int64(v), ok
}

func (m *fieldMachine) FieldWidth(name string) (int, bool) {
	f, ok := m.d.fieldByName[name]
	if !ok {
		return 0, false
	}
	return f.Width(), true
}

func (m *fieldMachine) RegAlias(name string) (string, int64, bool) {
	a, ok := m.d.aliasByName[name]
	if !ok {
		return "", 0, false
	}
	return a.File, a.Index, true
}

func (m *fieldMachine) IsRegFile(name string) bool {
	rf, ok := m.d.fileByName[name]
	return ok && rf.Count > 0
}

func (m *fieldMachine) ReadReg(file string, idx int64) (uint64, error) {
	if m.zeroOK && m.d.isZeroReg(file, idx) {
		return 0, nil
	}
	return 0, rtl.ErrDynamic
}

func (m *fieldMachine) WriteReg(string, int64, uint64) error { return nil }

func (m *fieldMachine) ReadMem(uint64, int) (uint64, error) { return 0, rtl.ErrDynamic }

func (m *fieldMachine) WriteMem(uint64, int, uint64) error { return nil }

func (m *fieldMachine) PC() uint64 {
	return m.pc
}

func (m *fieldMachine) SetPC(uint64, bool) {}
func (m *fieldMachine) Annul()             {}
func (m *fieldMachine) Trap(uint64) error  { return nil }

// StaticTarget computes the control-transfer target of def at pc
// given concrete field values, when the target is statically
// computable (direct branches/calls/jumps, and jumps through the
// hardwired zero register to a literal address).  ok is false when
// the target depends on run-time register contents.
func (d *Desc) StaticTarget(def *InstDef, fields map[string]uint32, pc uint32) (uint32, bool) {
	fm := &fieldMachine{d: d, fields: fields, pc: uint64(pc), pcKnown: true, zeroOK: true}
	ev := rtl.NewExprEvaluator(fm)
	target, found := d.walkTarget(def.Sem, ev)
	if !found {
		return 0, false
	}
	return uint32(target), true
}

// walkTarget steps through a semantic AST, evaluating temporaries as
// it goes and descending both arms of run-time-conditional guards,
// looking for an evaluable assignment to pc.
func (d *Desc) walkTarget(n rtl.Node, ev *rtl.ExprEvaluator) (uint64, bool) {
	switch x := rtl.UnwrapSeq(n).(type) {
	case rtl.Seq:
		for _, step := range x.Steps {
			for _, op := range step {
				if t, ok := d.walkTarget(op, ev); ok {
					return t, true
				}
			}
		}
	case rtl.Assign:
		if id, ok := rtl.UnwrapSeq(x.LHS).(rtl.Ident); ok {
			if id.Name == "pc" {
				v, err := ev.Eval(x.RHS)
				if err != nil {
					return 0, false
				}
				return v, true
			}
			// A temporary: evaluate if possible so later steps can
			// use it.
			if _, isField := ev.Machine().Field(id.Name); !isField {
				if _, _, isAlias := ev.Machine().RegAlias(id.Name); !isAlias {
					if v, err := ev.Eval(x.RHS); err == nil {
						ev.SetTemp(id.Name, v)
					}
				}
			}
		}
	case rtl.Cond:
		// Resolve field-only guards; otherwise look in both arms.
		if c, err := ev.Eval(x.C); err == nil {
			if c != 0 {
				return d.walkTarget(x.T, ev)
			}
			if x.F != nil {
				return d.walkTarget(x.F, ev)
			}
			return 0, false
		}
		if t, ok := d.walkTarget(x.T, ev); ok {
			return t, true
		}
		if x.F != nil {
			return d.walkTarget(x.F, ev)
		}
	}
	return 0, false
}

// effWalker accumulates Effects over a semantic AST.
type effWalker struct {
	d     *Desc
	ev    *rtl.ExprEvaluator
	fm    *fieldMachine
	eff   *Effects
	temps map[string]bool
	step  int
	cond  bool // under a run-time-conditional guard
	root  bool // outermost Seq defines sequential steps
}

// EffectsFor derives the exact effects of definition def specialized
// by the given field values.
func (d *Desc) EffectsFor(def *InstDef, fields map[string]uint32) Effects {
	fm := &fieldMachine{d: d, fields: fields, zeroOK: false}
	w := &effWalker{
		d:     d,
		ev:    rtl.NewExprEvaluator(fm),
		fm:    fm,
		eff:   &Effects{},
		temps: map[string]bool{},
		root:  true,
	}
	w.stmt(def.Sem)
	if w.eff.Barrier {
		all := d.allIntRegs()
		w.eff.Reads = w.eff.Reads.Union(all)
		w.eff.Writes = w.eff.Writes.Union(all)
	}
	return *w.eff
}

func (w *effWalker) stmt(n rtl.Node) {
	switch x := rtl.UnwrapSeq(n).(type) {
	case rtl.Seq:
		if w.root {
			// The outermost Seq defines the sequential steps that
			// distinguish delayed (late) pc assignments.
			w.root = false
			for i, step := range x.Steps {
				w.step = i
				for _, op := range step {
					w.stmt(op)
				}
			}
			return
		}
		// Nested groups inside guard arms join the current step.
		for _, step := range x.Steps {
			for _, op := range step {
				w.stmt(op)
			}
		}
	case rtl.Assign:
		w.assign(x)
	case rtl.Cond:
		if c, err := w.ev.Eval(x.C); err == nil {
			// Field-resolvable guard: only the live arm has effects.
			if c != 0 {
				w.stmt(x.T)
			} else if x.F != nil {
				w.stmt(x.F)
			}
			return
		}
		w.exprReads(x.C)
		saved := w.cond
		w.cond = true
		w.stmt(x.T)
		if x.F != nil {
			w.stmt(x.F)
		}
		w.cond = saved
	case rtl.Ident:
		if x.Name == "annul" {
			w.eff.Annul = true
		}
	case rtl.Apply:
		fn, args := applySpine(x)
		if id, ok := fn.(rtl.Ident); ok {
			switch id.Name {
			case "trap":
				w.eff.Trap = true
			case "winsave", "winrestore":
				w.eff.Barrier = true
			}
		}
		for _, a := range args {
			w.exprReads(a)
		}
	}
}

func (w *effWalker) assign(x rtl.Assign) {
	w.exprReads(x.RHS)
	switch lhs := rtl.UnwrapSeq(x.LHS).(type) {
	case rtl.Ident:
		if lhs.Name == "pc" {
			w.eff.WritesPC = true
			if w.cond {
				w.eff.CondPC = true
			}
			if w.step > 0 {
				w.eff.LatePC = true
			}
			return
		}
		if a, ok := w.d.aliasByName[lhs.Name]; ok {
			w.writeReg(a.File, a.Index, x.RHS)
			return
		}
		if _, isField := w.fm.fields[lhs.Name]; isField {
			return // malformed; field writes are rejected at execution
		}
		// Temporary: evaluate for later guard resolution.
		w.temps[lhs.Name] = true
		if v, err := w.ev.Eval(x.RHS); err == nil {
			w.ev.SetTemp(lhs.Name, v)
		}
	case rtl.Index:
		base, ok := lhs.Base.(rtl.Ident)
		if !ok {
			return
		}
		if base.Name == "M" {
			w.eff.WritesMem = true
			w.eff.WriteBytes += w.widthOf(lhs)
			w.exprReads(lhs.Elem)
			return
		}
		if idx, err := w.ev.Eval(lhs.Elem); err == nil {
			w.writeReg(base.Name, int64(idx), x.RHS)
		} else {
			// Register index not field-computable: conservatively
			// touch the whole file.
			w.eff.Barrier = true
		}
	}
}

func (w *effWalker) writeReg(file string, idx int64, rhs rtl.Node) {
	if w.d.isZeroReg(file, idx) {
		return
	}
	r, ok := w.d.MachineReg(file, idx)
	if !ok {
		return
	}
	w.eff.Writes = w.eff.Writes.Add(r)
	if isPCValue(rtl.UnwrapSeq(rhs)) {
		w.eff.Link = r
		w.eff.HasLink = true
	}
}

// isPCValue recognizes a return-address expression: pc itself (SPARC
// call/jmpl) or pc plus a constant (MIPS jal's pc+8).
func isPCValue(n rtl.Node) bool {
	if id, ok := n.(rtl.Ident); ok {
		return id.Name == "pc"
	}
	if b, ok := n.(rtl.Bin); ok && b.Op == "+" {
		l, r := rtl.UnwrapSeq(b.L), rtl.UnwrapSeq(b.R)
		if _, isNum := r.(rtl.Num); isNum {
			return isPCValue(l)
		}
		if _, isNum := l.(rtl.Num); isNum {
			return isPCValue(r)
		}
	}
	return false
}

func (w *effWalker) widthOf(ix rtl.Index) int {
	if ix.Width == nil {
		return 4
	}
	if v, err := w.ev.Eval(ix.Width); err == nil {
		return int(v)
	}
	return 4
}

func (w *effWalker) exprReads(n rtl.Node) {
	switch x := rtl.UnwrapSeq(n).(type) {
	case nil, rtl.Num, rtl.Sym:
	case rtl.Ident:
		if x.Name == "pc" || w.temps[x.Name] {
			return
		}
		if _, isField := w.fm.fields[x.Name]; isField {
			return
		}
		if a, ok := w.d.aliasByName[x.Name]; ok {
			w.readReg(a.File, a.Index)
		}
	case rtl.Index:
		base, ok := x.Base.(rtl.Ident)
		if !ok {
			return
		}
		if base.Name == "M" {
			w.eff.ReadsMem = true
			w.eff.ReadBytes += w.widthOf(x)
			w.exprReads(x.Elem)
			return
		}
		if idx, err := w.ev.Eval(x.Elem); err == nil {
			w.readReg(base.Name, int64(idx))
		} else {
			w.eff.Barrier = true
		}
	case rtl.Bin:
		w.exprReads(x.L)
		w.exprReads(x.R)
	case rtl.Un:
		w.exprReads(x.X)
	case rtl.Cond:
		if c, err := w.ev.Eval(x.C); err == nil {
			if c != 0 {
				w.exprReads(x.T)
			} else if x.F != nil {
				w.exprReads(x.F)
			}
			return
		}
		w.exprReads(x.C)
		w.exprReads(x.T)
		if x.F != nil {
			w.exprReads(x.F)
		}
	case rtl.Apply:
		fn, args := applySpine(x)
		if id, ok := fn.(rtl.Ident); ok && (id.Name == "winsave" || id.Name == "winrestore") {
			w.eff.Barrier = true
		}
		for _, a := range args {
			w.exprReads(a)
		}
	case rtl.Seq:
		for _, step := range x.Steps {
			for _, op := range step {
				w.exprReads(op)
			}
		}
	}
}

func (w *effWalker) readReg(file string, idx int64) {
	if w.d.isZeroReg(file, idx) {
		return
	}
	if r, ok := w.d.MachineReg(file, idx); ok {
		w.eff.Reads = w.eff.Reads.Add(r)
	}
}

// applySpine flattens nested applications into head + arguments.
func applySpine(n rtl.Node) (rtl.Node, []rtl.Node) {
	var args []rtl.Node
	for {
		a, ok := n.(rtl.Apply)
		if !ok {
			return n, args
		}
		args = append([]rtl.Node{a.Arg}, args...)
		n = a.Fn
	}
}

// ErrNoSem reports execution of an undecodable word.
var ErrNoSem = errors.New("spawn: word has no instruction semantics")
