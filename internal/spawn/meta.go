package spawn

import (
	"fmt"

	"eel/internal/rtl"
)

// metaEval reduces a description-level expression to a ground
// semantic AST: val-bindings inline, lambdas beta-reduce,
// applications of lambdas substitute, "@" expands elementwise over
// vectors, the trivial condition tests 'a and 'n fold to constants,
// and guards with constant conditions fold to the live arm.  What
// remains is an AST the rtl evaluator and spawn's analyses consume
// directly.
func (d *Desc) metaEval(n rtl.Node, depth int) (rtl.Node, error) {
	if depth > 64 {
		return nil, fmt.Errorf("spawn: description recursion too deep (cyclic val?)")
	}
	switch x := n.(type) {
	case nil:
		return nil, nil
	case rtl.Num, rtl.Sym:
		return x, nil
	case rtl.Ident:
		// Inline val-bindings; leave fields, registers, builtins,
		// temporaries, and lambda-bound names alone.
		if body, ok := d.vals[x.Name]; ok {
			return d.metaEval(body, depth+1)
		}
		return x, nil
	case rtl.Lambda:
		// Do not reduce under the binder: the parameter must not be
		// confused with a val of the same name.  Reduction happens
		// at application time on the substituted body.
		return x, nil
	case rtl.Apply:
		fn, err := d.metaEval(x.Fn, depth+1)
		if err != nil {
			return nil, err
		}
		arg, err := d.metaEval(x.Arg, depth+1)
		if err != nil {
			return nil, err
		}
		if lam, ok := fn.(rtl.Lambda); ok {
			return d.metaEval(rtl.Subst(lam.Body, lam.Param, arg), depth+1)
		}
		// Application of a vector of functions to an argument
		// distributes: [f g] x == [f x, g x].
		if vec, ok := fn.(rtl.Vector); ok {
			elems := make([]rtl.Node, len(vec.Elems))
			for i, e := range vec.Elems {
				r, err := d.metaEval(rtl.Apply{Fn: e, Arg: arg}, depth+1)
				if err != nil {
					return nil, err
				}
				elems[i] = r
			}
			return rtl.Vector{Elems: elems}, nil
		}
		// Fold trivial condition tests so that branch-always and
		// branch-never instructions classify correctly.
		if sym, ok := fn.(rtl.Sym); ok {
			switch sym.Name {
			case "a", "fa":
				return rtl.Num{Val: 1}, nil
			case "n", "fn":
				return rtl.Num{Val: 0}, nil
			}
		}
		return rtl.Apply{Fn: fn, Arg: arg}, nil
	case rtl.MapApply:
		fn, err := d.metaEval(x.Fn, depth+1)
		if err != nil {
			return nil, err
		}
		vecN, err := d.metaEval(x.Vec, depth+1)
		if err != nil {
			return nil, err
		}
		vec, ok := vecN.(rtl.Vector)
		if !ok {
			return nil, fmt.Errorf("spawn: @ wants a vector, got %s", vecN)
		}
		elems := make([]rtl.Node, len(vec.Elems))
		for i, e := range vec.Elems {
			r, err := d.metaEval(rtl.Apply{Fn: fn, Arg: e}, depth+1)
			if err != nil {
				return nil, err
			}
			elems[i] = r
		}
		return rtl.Vector{Elems: elems}, nil
	case rtl.Vector:
		elems := make([]rtl.Node, len(x.Elems))
		for i, e := range x.Elems {
			r, err := d.metaEval(e, depth+1)
			if err != nil {
				return nil, err
			}
			elems[i] = r
		}
		return rtl.Vector{Elems: elems}, nil
	case rtl.Bin:
		l, err := d.metaEval(x.L, depth+1)
		if err != nil {
			return nil, err
		}
		r, err := d.metaEval(x.R, depth+1)
		if err != nil {
			return nil, err
		}
		return rtl.Bin{Op: x.Op, L: l, R: r}, nil
	case rtl.Un:
		e, err := d.metaEval(x.X, depth+1)
		if err != nil {
			return nil, err
		}
		return rtl.Un{Op: x.Op, X: e}, nil
	case rtl.Cond:
		c, err := d.metaEval(x.C, depth+1)
		if err != nil {
			return nil, err
		}
		t, err := d.metaEval(x.T, depth+1)
		if err != nil {
			return nil, err
		}
		var f rtl.Node
		if x.F != nil {
			f, err = d.metaEval(x.F, depth+1)
			if err != nil {
				return nil, err
			}
		}
		// Constant guard (after 'a/'n folding) selects its arm; the
		// guard may be parenthesized, i.e. Seq-wrapped.
		if num, ok := rtl.UnwrapSeq(c).(rtl.Num); ok {
			if num.Val != 0 {
				return t, nil
			}
			if f == nil {
				return rtl.Seq{}, nil // empty statement
			}
			return f, nil
		}
		return rtl.Cond{C: c, T: t, F: f}, nil
	case rtl.Assign:
		lhs, err := d.metaEval(x.LHS, depth+1)
		if err != nil {
			return nil, err
		}
		rhs, err := d.metaEval(x.RHS, depth+1)
		if err != nil {
			return nil, err
		}
		return rtl.Assign{LHS: lhs, RHS: rhs}, nil
	case rtl.Index:
		base, err := d.metaEval(x.Base, depth+1)
		if err != nil {
			return nil, err
		}
		elem, err := d.metaEval(x.Elem, depth+1)
		if err != nil {
			return nil, err
		}
		var w rtl.Node
		if x.Width != nil {
			w, err = d.metaEval(x.Width, depth+1)
			if err != nil {
				return nil, err
			}
		}
		return rtl.Index{Base: base, Elem: elem, Width: w}, nil
	case rtl.Seq:
		steps := make([][]rtl.Node, len(x.Steps))
		for i, step := range x.Steps {
			for _, op := range step {
				r, err := d.metaEval(op, depth+1)
				if err != nil {
					return nil, err
				}
				// Drop empty statements produced by guard folding.
				if s, ok := r.(rtl.Seq); ok && len(s.Steps) == 0 {
					continue
				}
				steps[i] = append(steps[i], r)
			}
		}
		return rtl.Seq{Steps: steps}, nil
	default:
		return nil, fmt.Errorf("spawn: cannot meta-evaluate %s", n)
	}
}
