package spawn

import (
	"sort"
	"sync"

	"eel/internal/machine"
)

// Glue is the hand-written, machine-specific refinement hook (the Go
// equivalent of the paper's Fig 6 annotated code): spawn derives a
// coarse category and effects from the description, and the glue
// resolves convention-level overloads — on SPARC, the three uses of
// jmpl (indirect call, return, indirect jump) and the system-call
// idiom.  The glue may rewrite any part of the spec except Word.
type Glue func(d *Desc, def *InstDef, spec *machine.InstSpec)

// TableDecoder is a machine.Decoder generated from a description.
// It interns instructions by machine word, reproducing the paper's
// §3.4 optimization ("EEL allocates only one instruction to
// represent all instances of a particular machine instruction",
// reducing allocations roughly fourfold); SharingStats exposes the
// measured ratio for experiment E6.
type TableDecoder struct {
	desc    *Desc
	glue    Glue
	regName func(machine.Reg) string

	mu      sync.Mutex
	cache   map[uint32]*machine.Inst
	decodes uint64

	// interning can be disabled for the E6 ablation.
	intern bool
}

// NewDecoder builds a decoder for desc.  glue and regName may be nil.
func NewDecoder(desc *Desc, glue Glue, regName func(machine.Reg) string) *TableDecoder {
	return &TableDecoder{
		desc:    desc,
		glue:    glue,
		regName: regName,
		cache:   map[uint32]*machine.Inst{},
		intern:  true,
	}
}

// SetIntern toggles instruction-object sharing (ablation E6).
func (t *TableDecoder) SetIntern(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.intern = on
	if !on {
		t.cache = map[uint32]*machine.Inst{}
	}
}

// Name returns the description's machine name.
func (t *TableDecoder) Name() string { return t.desc.MachineName }

// WordSize returns the instruction width in bytes.
func (t *TableDecoder) WordSize() int { return t.desc.WordBits / 8 }

// Desc returns the underlying description.
func (t *TableDecoder) Desc() *Desc { return t.desc }

// RegName renders a register name.
func (t *TableDecoder) RegName(r machine.Reg) string {
	if t.regName != nil {
		return t.regName(r)
	}
	return machine.RegSet{}.Add(r).String()
}

// Decode returns the (shared) instruction for word.
func (t *TableDecoder) Decode(word uint32) *machine.Inst {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.decodes++
	if t.intern {
		if inst, ok := t.cache[word]; ok {
			return inst
		}
	}
	inst := machine.NewInst(t.specFor(word))
	if t.intern {
		t.cache[word] = inst
	}
	return inst
}

// SharingStats returns total decode requests and distinct
// instruction objects allocated (experiment E6).
func (t *TableDecoder) SharingStats() (decodes, unique uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.decodes, uint64(len(t.cache))
}

// ResetStats clears decode counters and the intern cache.
func (t *TableDecoder) ResetStats() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.decodes = 0
	t.cache = map[uint32]*machine.Inst{}
}

// specFor derives the full machine-independent spec for word.
func (t *TableDecoder) specFor(word uint32) machine.InstSpec {
	spec := machine.InstSpec{Word: word, Cat: machine.CatInvalid}
	def := t.desc.DecodeRaw(word)
	if def == nil {
		return spec
	}
	fields := t.desc.FieldVals(word)
	eff := t.desc.EffectsFor(def, fields)

	_, direct := t.desc.StaticTarget(def, fields, 0x1000)
	spec.Name = def.Name
	spec.Cat = Categorize(eff, direct)
	spec.Reads = eff.Reads
	spec.Writes = eff.Writes
	spec.ReadsMem = eff.ReadsMem
	spec.WritesMem = eff.WritesMem
	spec.MemWidth = eff.MemWidth()
	spec.DelaySlots = 0
	if eff.WritesPC && eff.LatePC {
		spec.DelaySlots = 1
	}
	spec.AnnulBit = eff.Annul
	spec.Conditional = eff.CondPC
	if direct {
		d, f := t.desc, fields
		spec.Target = func(pc uint32) (uint32, bool) { return d.StaticTarget(def, f, pc) }
	}
	spec.Fields = fieldSlice(fields)
	spec.Sem = &InstSem{Def: def, Desc: t.desc}
	if t.glue != nil {
		t.glue(t.desc, def, &spec)
	}
	return spec
}

// InstSem is the semantics handle attached to decoded instructions;
// the emulator executes Def.Sem against the description's register
// model.
type InstSem struct {
	Def  *InstDef
	Desc *Desc
}

func fieldSlice(fields map[string]uint32) []machine.Field {
	out := make([]machine.Field, 0, len(fields))
	for k, v := range fields {
		out = append(out, machine.Field{Name: k, Val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
