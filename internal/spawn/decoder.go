package spawn

import (
	"sort"
	"sync"
	"sync/atomic"

	"eel/internal/machine"
	"eel/internal/rtl"
	"eel/internal/telemetry"
)

// Glue is the hand-written, machine-specific refinement hook (the Go
// equivalent of the paper's Fig 6 annotated code): spawn derives a
// coarse category and effects from the description, and the glue
// resolves convention-level overloads — on SPARC, the three uses of
// jmpl (indirect call, return, indirect jump) and the system-call
// idiom.  The glue may rewrite any part of the spec except Word.
type Glue func(d *Desc, def *InstDef, spec *machine.InstSpec)

// TableDecoder is a machine.Decoder generated from a description.
// It interns instructions by machine word, reproducing the paper's
// §3.4 optimization ("EEL allocates only one instruction to
// represent all instances of a particular machine instruction",
// reducing allocations roughly fourfold); SharingStats exposes the
// measured ratio for experiment E6.
//
// Decode is safe for concurrent use: the intern cache is a sync.Map,
// so parallel analysis workers share one decoder (and one instruction
// object per distinct word) without serializing on a lock.  Two
// workers racing on the same uncached word may both derive the spec,
// but LoadOrStore guarantees a single canonical *Inst survives.
// SetIntern and ResetStats reconfigure the decoder and must not run
// concurrently with Decode.
type TableDecoder struct {
	desc    *Desc
	glue    Glue
	regName func(machine.Reg) string

	cache   atomic.Pointer[sync.Map] // uint32 → *machine.Inst
	decodes atomic.Uint64
	unique  atomic.Uint64

	// interning can be disabled for the E6 ablation.
	intern atomic.Bool
}

// NewDecoder builds a decoder for desc.  glue and regName may be nil.
func NewDecoder(desc *Desc, glue Glue, regName func(machine.Reg) string) *TableDecoder {
	t := &TableDecoder{
		desc:    desc,
		glue:    glue,
		regName: regName,
	}
	t.cache.Store(&sync.Map{})
	t.intern.Store(true)
	return t
}

// SetIntern toggles instruction-object sharing (ablation E6).
func (t *TableDecoder) SetIntern(on bool) {
	t.intern.Store(on)
	if !on {
		t.cache.Store(&sync.Map{})
		t.unique.Store(0)
	}
}

// Name returns the description's machine name.
func (t *TableDecoder) Name() string { return t.desc.MachineName }

// WordSize returns the instruction width in bytes.
func (t *TableDecoder) WordSize() int { return t.desc.WordBits / 8 }

// Desc returns the underlying description.
func (t *TableDecoder) Desc() *Desc { return t.desc }

// RegName renders a register name.
func (t *TableDecoder) RegName(r machine.Reg) string {
	if t.regName != nil {
		return t.regName(r)
	}
	return machine.RegSet{}.Add(r).String()
}

// Decode returns the (shared) instruction for word.
func (t *TableDecoder) Decode(word uint32) *machine.Inst {
	t.decodes.Add(1)
	if !t.intern.Load() {
		return machine.NewInst(t.specFor(word))
	}
	m := t.cache.Load()
	if v, ok := m.Load(word); ok {
		return v.(*machine.Inst)
	}
	inst := machine.NewInst(t.specFor(word))
	if prev, loaded := m.LoadOrStore(word, inst); loaded {
		return prev.(*machine.Inst)
	}
	t.unique.Add(1)
	return inst
}

// SharingStats returns total decode requests and distinct
// instruction objects interned (experiment E6).
func (t *TableDecoder) SharingStats() (decodes, unique uint64) {
	return t.decodes.Load(), t.unique.Load()
}

// AttachTelemetry surfaces the decoder's sharing counters in reg as
// live gauges ("spawn.decodes", "spawn.interned") without adding any
// cost to the Decode hot path: the existing atomics are sampled only
// when the registry takes a snapshot.
func (t *TableDecoder) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("spawn.decodes", func() int64 { return int64(t.decodes.Load()) })
	reg.GaugeFunc("spawn.interned", func() int64 { return int64(t.unique.Load()) })
}

// ResetStats clears decode counters and the intern cache.
func (t *TableDecoder) ResetStats() {
	t.decodes.Store(0)
	t.unique.Store(0)
	t.cache.Store(&sync.Map{})
}

// specFor derives the full machine-independent spec for word.
func (t *TableDecoder) specFor(word uint32) machine.InstSpec {
	spec := machine.InstSpec{Word: word, Cat: machine.CatInvalid}
	def := t.desc.DecodeRaw(word)
	if def == nil {
		return spec
	}
	fields := t.desc.FieldVals(word)
	eff := t.desc.EffectsFor(def, fields)

	_, direct := t.desc.StaticTarget(def, fields, 0x1000)
	spec.Name = def.Name
	spec.Cat = Categorize(eff, direct)
	spec.Reads = eff.Reads
	spec.Writes = eff.Writes
	spec.ReadsMem = eff.ReadsMem
	spec.WritesMem = eff.WritesMem
	spec.MemWidth = eff.MemWidth()
	spec.DelaySlots = 0
	if eff.WritesPC && eff.LatePC {
		spec.DelaySlots = 1
	}
	spec.AnnulBit = eff.Annul
	spec.Conditional = eff.CondPC
	if direct {
		d, f := t.desc, fields
		spec.Target = func(pc uint32) (uint32, bool) { return d.StaticTarget(def, f, pc) }
	}
	spec.Fields = fieldSlice(fields)
	spec.Sem = &InstSem{Def: def, Desc: t.desc, Fields: fields}
	if t.glue != nil {
		t.glue(t.desc, def, &spec)
	}
	return spec
}

// InstSem is the semantics handle attached to decoded instructions;
// the emulator executes Def.Sem against the description's register
// model, or the compiled form from Compiled when it wants speed.
type InstSem struct {
	Def  *InstDef
	Desc *Desc
	// Fields holds the decoded field values the semantics are
	// specialized on.
	Fields map[string]uint32

	compiled atomic.Pointer[compiledSem]
	direct   atomic.Pointer[directSem]
}

type compiledSem struct {
	prog *rtl.Prog
	err  error
}

// directSem caches the direct-commit lowering; prog is nil when the
// semantics are not direct-commitable (the cached negative keeps hot
// re-translation from re-proving that every time).
type directSem struct {
	prog *rtl.Prog
}

// Compiled returns the instruction's semantics lowered once to an
// rtl.Prog specialized on this word's field values.  Because the
// decoder interns instructions by word, each distinct machine word is
// compiled at most once per decoder; the result is cached on the
// shared instruction object, so the emulator's translation cache gets
// compiled semantics for free on re-decode.  Concurrent callers may
// race to compile but always observe an equivalent program.
func (s *InstSem) Compiled() (*rtl.Prog, error) {
	if cs := s.compiled.Load(); cs != nil {
		return cs.prog, cs.err
	}
	// Slow path, taken once per distinct word: worth a trace span and
	// a registry tick so JIT warm-up is visible in -trace output.
	sp := telemetry.ActiveTracer().Begin("rtl.compile "+s.Def.Name, "rtl")
	cs := &compiledSem{}
	cs.prog, cs.err = rtl.Compile(s.Def.Sem, semCompileEnv{s})
	sp.End()
	telemetry.Default().Counter("rtl.compiles").Add(1)
	s.compiled.Store(cs)
	return cs.prog, cs.err
}

// SemNode exposes the instruction's raw semantic AST.  The routine-
// tier compiler walks it to recover the exact node a faulting builtin
// would report, so routine-compiled faults render the same error
// strings as the interpreter.
func (s *InstSem) SemNode() rtl.Node { return s.Def.Sem }

// CompiledDirect returns the instruction's semantics lowered in
// direct-commit mode (rtl.CompileDirect), or nil when the commit
// reorder cannot be proven unobservable for this word.  The emulator's
// hot tier asks for it only when a block turns hot, and the result —
// including the negative — is cached per interned word like Compiled.
func (s *InstSem) CompiledDirect() *rtl.Prog {
	if ds := s.direct.Load(); ds != nil {
		return ds.prog
	}
	ds := &directSem{}
	if p, err := rtl.CompileDirect(s.Def.Sem, semCompileEnv{s}); err == nil {
		ds.prog = p
	}
	telemetry.Default().Counter("rtl.compiles_direct").Add(1)
	s.direct.Store(ds)
	return ds.prog
}

// semCompileEnv adapts an InstSem to rtl.CompileEnv: field values
// come from the decoded word, the register model from the
// description.
type semCompileEnv struct{ s *InstSem }

func (e semCompileEnv) Field(name string) (int64, bool) {
	v, ok := e.s.Fields[name]
	return int64(v), ok
}

func (e semCompileEnv) FieldWidth(name string) (int, bool) {
	f, ok := e.s.Desc.Field(name)
	if !ok {
		return 0, false
	}
	return f.Width(), true
}

func (e semCompileEnv) RegAlias(name string) (string, int64, bool) {
	a, ok := e.s.Desc.AliasFor(name)
	if !ok {
		return "", 0, false
	}
	return a.File, a.Index, true
}

func (e semCompileEnv) IsRegFile(name string) bool {
	rf, ok := e.s.Desc.File(name)
	return ok && rf.Count > 0
}

func fieldSlice(fields map[string]uint32) []machine.Field {
	out := make([]machine.Field, 0, len(fields))
	for k, v := range fields {
		out = append(out, machine.Field{Name: k, Val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
