package spawn

import (
	"strings"
	"sync"
	"testing"

	"eel/internal/machine"
	"eel/internal/rtl"
)

// toyDesc is a minimal machine exercising the description features:
// matrix patterns with holes, val lambdas, @ expansion, a zero
// register, memory, delayed control transfer, and a trap.
const toyDesc = `
machine toy

instruction{32} fields
  op 28:31, rd 24:27, rs1 20:23, rs2 16:19, imm16 0:15, cflag 15:15

register integer{32} R[17]
alias integer{32} CC is R[16]
register integer{32} pc
zero is R[0]

pat [ add sub _ ld st ] is op=[0..4]
pat jmp is op=5
pat br is op=6
pat call is op=7
pat halt is op=8

val simm is sex(imm16)
val binop is \f.(R[rd] := f R[rs1] R[rs2])

sem add is R[rd] := R[rs1] + R[rs2], CC := cc_add(R[rs1], R[rs2])
sem sub is R[rd] := R[rs1] - R[rs2]
sem ld is R[rd] := M[R[rs1] + simm]{4}
sem st is M[R[rs1] + simm]{4} := R[rd]
sem jmp is t := R[rs1] ; pc := t
sem br is t := pc + simm ; ('ne CC) ? pc := t
sem call is t := pc + simm, R[15] := pc ; pc := t
sem halt is trap(imm16)
`

func toy(t *testing.T) *Desc {
	t.Helper()
	d, err := ParseDesc(toyDesc)
	if err != nil {
		t.Fatalf("ParseDesc: %v", err)
	}
	return d
}

// word builds a toy instruction.
func word(d *Desc, fields map[string]uint32) uint32 {
	var w uint32
	for name, v := range fields {
		f, _ := d.Field(name)
		w = f.Insert(w, v)
	}
	return w
}

func TestFieldExtractInsert(t *testing.T) {
	d := toy(t)
	f, ok := d.Field("rd")
	if !ok || f.Width() != 4 {
		t.Fatalf("rd = %+v", f)
	}
	w := f.Insert(0, 0xA)
	if f.Extract(w) != 0xA {
		t.Errorf("roundtrip failed: %#x", w)
	}
	if f.Insert(w, 0x5) != f.Insert(0, 0x5) {
		t.Errorf("Insert did not clear old bits")
	}
}

func TestMatrixExpansionWithHoles(t *testing.T) {
	d := toy(t)
	if _, ok := d.Lookup("add"); !ok {
		t.Error("add missing")
	}
	if _, ok := d.Lookup("st"); !ok {
		t.Error("st missing")
	}
	// op=2 is a hole: must not decode.
	if def := d.DecodeRaw(word(d, map[string]uint32{"op": 2})); def != nil {
		t.Errorf("hole decoded as %s", def.Name)
	}
	// op values assigned in order.
	if def, _ := d.Lookup("sub"); def.Fixed["op"] != 1 {
		t.Errorf("sub op = %d", def.Fixed["op"])
	}
	if def, _ := d.Lookup("st"); def.Fixed["op"] != 4 {
		t.Errorf("st op = %d", def.Fixed["op"])
	}
}

func TestClassification(t *testing.T) {
	d := toy(t)
	cases := map[string]machine.Category{
		"add":  machine.CatCompute,
		"ld":   machine.CatLoad,
		"st":   machine.CatStore,
		"br":   machine.CatBranch,
		"call": machine.CatCallDirect,
		"halt": machine.CatSystem,
	}
	for name, want := range cases {
		def, _ := d.Lookup(name)
		if def.Info.Cat != want {
			t.Errorf("%s: %s, want %s", name, def.Info.Cat, want)
		}
	}
	// jmp's category is per-word: through a real register it is
	// indirect; through the zero register it is a (direct) literal
	// jump.  (Definition-level info uses zeroed fields, so it reads
	// as direct there.)
	dec := NewDecoder(d, nil, nil)
	if c := dec.Decode(word(d, map[string]uint32{"op": 5, "rs1": 2})).Category(); c != machine.CatJumpIndirect {
		t.Errorf("jmp r2: %s", c)
	}
	if c := dec.Decode(word(d, map[string]uint32{"op": 5, "rs1": 0})).Category(); c != machine.CatJumpDirect {
		t.Errorf("jmp r0: %s", c)
	}
}

func TestEffectsReadsWrites(t *testing.T) {
	d := toy(t)
	def, _ := d.Lookup("add")
	eff := d.EffectsFor(def, d.FieldVals(word(d, map[string]uint32{"op": 0, "rd": 3, "rs1": 1, "rs2": 2})))
	if !eff.Reads.Equal(machine.NewRegSet(1, 2)) {
		t.Errorf("reads = %s", eff.Reads)
	}
	// writes rd and CC (R[16]).
	if !eff.Writes.Has(3) || !eff.Writes.Has(16) {
		t.Errorf("writes = %s", eff.Writes)
	}
}

func TestZeroRegSuppressed(t *testing.T) {
	d := toy(t)
	def, _ := d.Lookup("add")
	eff := d.EffectsFor(def, d.FieldVals(word(d, map[string]uint32{"op": 0, "rd": 0, "rs1": 0, "rs2": 2})))
	if eff.Reads.Has(0) || eff.Writes.Has(0) {
		t.Errorf("zero register leaked: r=%s w=%s", eff.Reads, eff.Writes)
	}
}

func TestDelaySlotDerivation(t *testing.T) {
	d := toy(t)
	for _, name := range []string{"jmp", "br", "call"} {
		def, _ := d.Lookup(name)
		if def.Info.DelaySlots != 1 {
			t.Errorf("%s delay slots = %d", name, def.Info.DelaySlots)
		}
	}
	def, _ := d.Lookup("add")
	if def.Info.DelaySlots != 0 {
		t.Errorf("add delay slots = %d", def.Info.DelaySlots)
	}
}

func TestStaticTargetPCRelative(t *testing.T) {
	d := toy(t)
	def, _ := d.Lookup("br")
	fields := d.FieldVals(word(d, map[string]uint32{"op": 6, "imm16": 0x20}))
	tgt, ok := d.StaticTarget(def, fields, 0x1000)
	if !ok || tgt != 0x1020 {
		t.Errorf("target = %#x ok=%v", tgt, ok)
	}
	// Negative displacement through sign extension.
	fields2 := d.FieldVals(word(d, map[string]uint32{"op": 6, "imm16": 0xfffc}))
	tgt2, ok := d.StaticTarget(def, fields2, 0x1000)
	if !ok || tgt2 != 0x0ffc {
		t.Errorf("target = %#x ok=%v", tgt2, ok)
	}
	// The register jump has no static target.
	jdef, _ := d.Lookup("jmp")
	if _, ok := d.StaticTarget(jdef, d.FieldVals(word(d, map[string]uint32{"op": 5, "rs1": 2})), 0); ok {
		t.Error("register jump has a static target")
	}
	// Jump through the zero register IS static (literal 0 + nothing).
	if tgt, ok := d.StaticTarget(jdef, d.FieldVals(word(d, map[string]uint32{"op": 5, "rs1": 0})), 0); !ok || tgt != 0 {
		t.Errorf("zero-reg jump: %#x ok=%v", tgt, ok)
	}
}

func TestLinkDetection(t *testing.T) {
	d := toy(t)
	def, _ := d.Lookup("call")
	eff := d.EffectsFor(def, d.fixedAsFull(def))
	if !eff.HasLink || eff.Link != 15 {
		t.Errorf("link = %v/%d", eff.HasLink, eff.Link)
	}
}

func TestMemWidth(t *testing.T) {
	d := toy(t)
	def, _ := d.Lookup("ld")
	eff := d.EffectsFor(def, d.fixedAsFull(def))
	if !eff.ReadsMem || eff.MemWidth() != 4 {
		t.Errorf("ld: readsMem=%v width=%d", eff.ReadsMem, eff.MemWidth())
	}
	sdef, _ := d.Lookup("st")
	seff := d.EffectsFor(sdef, d.fixedAsFull(sdef))
	if !seff.WritesMem || seff.ReadsMem {
		t.Errorf("st: %+v", seff)
	}
}

func TestDescErrors(t *testing.T) {
	bad := []struct {
		name, src string
	}{
		{"no sem", "machine x\ninstruction{32} fields\n  op 28:31\nregister integer{32} R[4]\npat foo is op=1\n"},
		{"dup field", "machine x\ninstruction{32} fields\n  op 28:31, op 0:3\n"},
		{"field out of range", "machine x\ninstruction{32} fields\n  op 30:33\n"},
		{"name count mismatch", "machine x\ninstruction{32} fields\n  op 28:31\npat [a b] is op=[0..2]\nsem a is trap(0)\n"},
		{"unknown field in pat", "machine x\ninstruction{32} fields\n  op 28:31\npat a is bogus=1\nsem a is trap(0)\n"},
		{"sem for unknown inst", "machine x\ninstruction{32} fields\n  op 28:31\nsem nothing is trap(0)\n"},
		{"duplicate inst", "machine x\ninstruction{32} fields\n  op 28:31\npat a is op=1\npat a is op=2\n"},
		{"alias of unknown file", "machine x\ninstruction{32} fields\n  op 28:31\nalias integer{32} Q is Z[1]\n"},
	}
	for _, c := range bad {
		if _, err := ParseDesc(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDecoderInterning(t *testing.T) {
	d := toy(t)
	dec := NewDecoder(d, nil, nil)
	w := word(d, map[string]uint32{"op": 0, "rd": 1})
	a := dec.Decode(w)
	if a != dec.Decode(w) {
		t.Error("interning broken")
	}
	dec.SetIntern(false)
	if dec.Decode(w) == dec.Decode(w) {
		t.Error("uninterned decode returned shared object")
	}
}

// TestDecoderParallelInterning hammers one decoder from many
// goroutines (run under -race) and checks every goroutine observed
// the same canonical *Inst per word and the sharing counters add up.
func TestDecoderParallelInterning(t *testing.T) {
	d := toy(t)
	dec := NewDecoder(d, nil, nil)
	words := []uint32{
		word(d, map[string]uint32{"op": 0, "rd": 1, "rs1": 2, "rs2": 3}),
		word(d, map[string]uint32{"op": 1, "rd": 4, "rs1": 5}),
		word(d, map[string]uint32{"op": 3, "rd": 6, "rs1": 7, "imm16": 16}),
		word(d, map[string]uint32{"op": 6, "imm16": 8}),
		word(d, map[string]uint32{"op": 8}),
	}
	const goroutines, rounds = 16, 200
	got := make([][]*machine.Inst, goroutines)
	var wg sync.WaitGroup
	for gi := range got {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			mine := make([]*machine.Inst, len(words))
			for r := 0; r < rounds; r++ {
				for wi, w := range words {
					in := dec.Decode(w)
					if mine[wi] == nil {
						mine[wi] = in
					} else if mine[wi] != in {
						t.Errorf("goroutine %d: word %#x decoded to two objects", gi, w)
						return
					}
				}
			}
			got[gi] = mine
		}(gi)
	}
	wg.Wait()
	for gi := 1; gi < goroutines; gi++ {
		for wi := range words {
			if got[gi][wi] != got[0][wi] {
				t.Errorf("goroutines 0 and %d disagree on word %d", gi, wi)
			}
		}
	}
	decodes, unique := dec.SharingStats()
	if want := uint64(goroutines * rounds * len(words)); decodes != want {
		t.Errorf("decodes = %d, want %d", decodes, want)
	}
	if unique != uint64(len(words)) {
		t.Errorf("unique = %d, want %d", unique, len(words))
	}
}

func TestGlueHookRuns(t *testing.T) {
	d := toy(t)
	called := false
	glue := func(d *Desc, def *InstDef, spec *machine.InstSpec) {
		called = true
		if def.Name == "jmp" {
			spec.Cat = machine.CatReturn
		}
	}
	dec := NewDecoder(d, glue, nil)
	inst := dec.Decode(word(d, map[string]uint32{"op": 5, "rs1": 3}))
	if !called {
		t.Fatal("glue not invoked")
	}
	if inst.Category() != machine.CatReturn {
		t.Errorf("glue category override lost: %s", inst.Category())
	}
}

func TestMetaEvalFoldsConstantGuards(t *testing.T) {
	d := toy(t)
	// 'a folds to 1, selecting the then-arm.
	n, err := d.metaEval(mustParse(t, "('a CC) ? x := 1 : x := 2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(n.String(), "1") || strings.Contains(n.String(), "2") {
		t.Errorf("fold result: %s", n)
	}
}

func TestGenerateGo(t *testing.T) {
	out := GenerateGo(toy(t))
	if !strings.Contains(out, "package toytab") {
		t.Error("missing package clause")
	}
	if !strings.Contains(out, `"halt"`) || !strings.Contains(out, `"call"`) {
		t.Error("missing instructions")
	}
	if strings.Count(out, "\n") < 50 {
		t.Error("suspiciously small generated file")
	}
}

func mustParse(t *testing.T, src string) rtl.Node {
	t.Helper()
	n, err := rtl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
