// Package spawn implements the paper's machine-description compiler
// (§4, Fig 7).  A description declares instruction fields, register
// files and aliases, instruction encodings ("pat" clauses, including
// the paper's matrix convention where a vector of names expands over
// the cross product of field-value vectors), and instruction
// semantics ("val"/"sem" clauses in the RTL language, with
// description-level lambdas, vectors, and the elementwise "@"
// operator).
//
// From a description, spawn derives everything EEL's
// machine-independent layers need: a decoder (mask/match per
// instruction), the functional classification of every instruction,
// the registers each instruction reads and writes, memory access
// widths, delay-slot and annulment behaviour, and statically
// computable control-transfer targets.  The paper's observation is
// that this derivation makes the machine-specific layer an order of
// magnitude smaller and substantially less bug-prone than handwritten
// equivalents; experiment E9 measures that ratio for this repository.
package spawn

import (
	"fmt"
	"strings"

	"eel/internal/rtl"
)

// Field is one instruction-word bit field, bits Lo..Hi inclusive
// (bit 0 is the least significant).
type Field struct {
	Name   string
	Lo, Hi int
}

// Width returns the field's width in bits.
func (f Field) Width() int { return f.Hi - f.Lo + 1 }

// Mask returns the field's bit mask within the instruction word.
func (f Field) Mask() uint32 {
	return ((1 << uint(f.Width())) - 1) << uint(f.Lo)
}

// Extract returns the field's (unsigned) value in word.
func (f Field) Extract(word uint32) uint32 {
	return (word & f.Mask()) >> uint(f.Lo)
}

// Insert returns word with the field set to v.
func (f Field) Insert(word, v uint32) uint32 {
	return (word &^ f.Mask()) | ((v << uint(f.Lo)) & f.Mask())
}

// RegFile is a register file declaration ("register integer{32} R[36]").
type RegFile struct {
	Name  string
	Typ   string // "integer" or "float"
	Width int    // bits
	Count int    // 0 for scalar registers such as pc
}

// Alias names one register of a file ("alias integer{32} PSR is R[33]").
type Alias struct {
	Name  string
	File  string
	Index int64
}

// InstDef is one named instruction derived from a pat clause, with
// its semantics bound by a sem clause and the metadata spawn derives
// from that semantics.
type InstDef struct {
	Name  string
	Mask  uint32
	Match uint32
	// Fixed holds the field values the encoding pins down.
	Fixed map[string]uint32
	// Sem is the ground semantic AST (lambdas reduced away).
	Sem rtl.Node

	// Derived at description-compile time (Desc.analyze):
	Info ClassInfo
}

// Desc is a compiled machine description.
type Desc struct {
	// MachineName is the description's self-declared name.
	MachineName string
	// WordBits is the instruction width (32).
	WordBits int

	Fields  []Field
	Files   []RegFile
	Aliases []Alias
	Insts   []*InstDef

	// ZeroFile/ZeroIndex name the hardwired-zero register, if any
	// ("zero is R[0]").
	ZeroFile  string
	ZeroIndex int64
	HasZero   bool

	fieldByName map[string]*Field
	fileByName  map[string]*RegFile
	aliasByName map[string]*Alias
	instByName  map[string]*InstDef
	vals        map[string]rtl.Node

	// buckets indexes instructions by the word bits every pattern
	// constrains, for fast decoding.
	commonMask uint32
	buckets    map[uint32][]*InstDef

	// SourceLines counts non-comment, non-blank description lines
	// (experiment E9).
	SourceLines int
}

// DescError reports a description compilation failure.
type DescError struct {
	Line int
	Msg  string
}

func (e *DescError) Error() string { return fmt.Sprintf("spawn: line %d: %s", e.Line, e.Msg) }

// clause is one top-level description clause, split line-wise: a
// clause starts at a line whose first word is a keyword and extends
// to the next such line.
type clause struct {
	keyword string
	text    string // full clause text including keyword
	line    int
}

var clauseKeywords = map[string]bool{
	"machine":     true,
	"instruction": true,
	"register":    true,
	"alias":       true,
	"zero":        true,
	"pat":         true,
	"val":         true,
	"sem":         true,
}

// ParseDesc compiles a machine description.
func ParseDesc(src string) (*Desc, error) {
	d := &Desc{
		WordBits:    32,
		fieldByName: map[string]*Field{},
		fileByName:  map[string]*RegFile{},
		aliasByName: map[string]*Alias{},
		instByName:  map[string]*InstDef{},
		vals:        map[string]rtl.Node{},
	}
	clauses, lines, err := splitClauses(src)
	if err != nil {
		return nil, err
	}
	d.SourceLines = lines
	for _, c := range clauses {
		var err error
		switch c.keyword {
		case "machine":
			err = d.parseMachine(c)
		case "instruction":
			err = d.parseFields(c)
		case "register":
			err = d.parseRegister(c)
		case "alias":
			err = d.parseAlias(c)
		case "zero":
			err = d.parseZero(c)
		case "pat":
			err = d.parsePat(c)
		case "val":
			err = d.parseVal(c)
		case "sem":
			err = d.parseSem(c)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := d.analyze(); err != nil {
		return nil, err
	}
	d.buildBuckets()
	return d, nil
}

// MustParseDesc is ParseDesc for embedded, test-validated descriptions.
func MustParseDesc(src string) *Desc {
	d, err := ParseDesc(src)
	if err != nil {
		panic(err)
	}
	return d
}

// splitClauses splits a description into keyword-introduced clauses
// and counts non-comment, non-blank lines.
func splitClauses(src string) ([]clause, int, error) {
	var clauses []clause
	var cur *clause
	lines := 0
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = line[:idx]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		lines++
		word := firstWord(trimmed)
		if clauseKeywords[word] && !strings.HasPrefix(raw, " ") && !strings.HasPrefix(raw, "\t") {
			clauses = append(clauses, clause{keyword: word, line: i + 1})
			cur = &clauses[len(clauses)-1]
		}
		if cur == nil {
			return nil, 0, &DescError{i + 1, fmt.Sprintf("text before first clause: %q", trimmed)}
		}
		cur.text += line + "\n"
	}
	return clauses, lines, nil
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return s[:i]
		}
	}
	return s
}

// parseMachine handles "machine NAME".
func (d *Desc) parseMachine(c clause) error {
	fields := strings.Fields(c.text)
	if len(fields) != 2 {
		return &DescError{c.line, "machine clause wants one name"}
	}
	d.MachineName = fields[1]
	return nil
}

// parseFields handles "instruction{32} fields" followed by
// comma-separated "name lo:hi" declarations.
func (d *Desc) parseFields(c clause) error {
	body := strings.TrimSpace(c.text)
	// Strip "instruction{NN} fields" header.
	idx := strings.Index(body, "fields")
	if idx < 0 {
		return &DescError{c.line, "instruction clause lacks 'fields'"}
	}
	header := body[:idx]
	if open := strings.Index(header, "{"); open >= 0 {
		closeIdx := strings.Index(header, "}")
		if closeIdx < 0 {
			return &DescError{c.line, "unterminated width in instruction clause"}
		}
		var bits int
		if _, err := fmt.Sscanf(header[open+1:closeIdx], "%d", &bits); err != nil {
			return &DescError{c.line, "bad instruction width"}
		}
		d.WordBits = bits
	}
	for _, decl := range strings.Split(body[idx+len("fields"):], ",") {
		decl = strings.TrimSpace(decl)
		if decl == "" {
			continue
		}
		var name string
		var lo, hi int
		if _, err := fmt.Sscanf(decl, "%s %d:%d", &name, &lo, &hi); err != nil {
			return &DescError{c.line, fmt.Sprintf("bad field declaration %q", decl)}
		}
		if lo > hi || hi >= d.WordBits {
			return &DescError{c.line, fmt.Sprintf("field %s bits %d:%d out of range", name, lo, hi)}
		}
		if _, dup := d.fieldByName[name]; dup {
			return &DescError{c.line, "duplicate field " + name}
		}
		d.Fields = append(d.Fields, Field{Name: name, Lo: lo, Hi: hi})
		d.fieldByName[name] = &d.Fields[len(d.Fields)-1]
	}
	return nil
}

// parseRegister handles "register integer{32} R[36]" and scalar
// "register integer{32} pc".
func (d *Desc) parseRegister(c clause) error {
	var typ string
	var width int
	var decl string
	body := strings.TrimSpace(c.text)
	if _, err := fmt.Sscanf(body, "register %s", &typ); err != nil {
		return &DescError{c.line, "bad register clause"}
	}
	open := strings.Index(typ, "{")
	closeIdx := strings.Index(typ, "}")
	if open < 0 || closeIdx < open {
		return &DescError{c.line, "register type needs a {width}"}
	}
	if _, err := fmt.Sscanf(typ[open+1:closeIdx], "%d", &width); err != nil {
		return &DescError{c.line, "bad register width"}
	}
	rest := strings.TrimSpace(body[strings.Index(body, typ)+len(typ):])
	decl = rest
	rf := RegFile{Typ: typ[:open], Width: width}
	if b := strings.Index(decl, "["); b >= 0 {
		rf.Name = strings.TrimSpace(decl[:b])
		e := strings.Index(decl, "]")
		if e < b {
			return &DescError{c.line, "unterminated register count"}
		}
		if _, err := fmt.Sscanf(decl[b+1:e], "%d", &rf.Count); err != nil {
			return &DescError{c.line, "bad register count"}
		}
	} else {
		rf.Name = strings.TrimSpace(decl)
		rf.Count = 0
	}
	if rf.Name == "" {
		return &DescError{c.line, "register clause lacks a name"}
	}
	if _, dup := d.fileByName[rf.Name]; dup {
		return &DescError{c.line, "duplicate register file " + rf.Name}
	}
	d.Files = append(d.Files, rf)
	d.fileByName[rf.Name] = &d.Files[len(d.Files)-1]
	return nil
}

// parseAlias handles "alias integer{32} PSR is R[33]".
func (d *Desc) parseAlias(c clause) error {
	body := strings.TrimSpace(c.text)
	parts := strings.Fields(body)
	// alias TYPE NAME is FILE[IDX]
	if len(parts) < 5 || parts[3] != "is" {
		return &DescError{c.line, "bad alias clause"}
	}
	name := parts[2]
	ref := strings.Join(parts[4:], "")
	b := strings.Index(ref, "[")
	e := strings.Index(ref, "]")
	if b < 0 || e < b {
		return &DescError{c.line, "alias target must be FILE[INDEX]"}
	}
	a := Alias{Name: name, File: ref[:b]}
	if _, err := fmt.Sscanf(ref[b+1:e], "%d", &a.Index); err != nil {
		return &DescError{c.line, "bad alias index"}
	}
	if _, ok := d.fileByName[a.File]; !ok {
		return &DescError{c.line, "alias of unknown register file " + a.File}
	}
	d.Aliases = append(d.Aliases, a)
	d.aliasByName[name] = &d.Aliases[len(d.Aliases)-1]
	return nil
}

// parseZero handles "zero is R[0]".
func (d *Desc) parseZero(c clause) error {
	body := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.text), "zero"))
	body = strings.TrimSpace(strings.TrimPrefix(body, "is"))
	b := strings.Index(body, "[")
	e := strings.Index(body, "]")
	if b < 0 || e < b {
		return &DescError{c.line, "zero clause wants FILE[INDEX]"}
	}
	d.ZeroFile = strings.TrimSpace(body[:b])
	if _, err := fmt.Sscanf(body[b+1:e], "%d", &d.ZeroIndex); err != nil {
		return &DescError{c.line, "bad zero register index"}
	}
	if _, ok := d.fileByName[d.ZeroFile]; !ok {
		return &DescError{c.line, "zero register in unknown file " + d.ZeroFile}
	}
	d.HasZero = true
	return nil
}

// splitIs divides a clause body (after its keyword) at the "is"
// keyword separating names from definition.
func splitIs(c clause) (names, body string, err error) {
	text := strings.TrimSpace(c.text)
	text = strings.TrimSpace(text[len(c.keyword):])
	// Find " is " at nesting depth zero.
	depth := 0
	for i := 0; i+2 <= len(text); i++ {
		switch text[i] {
		case '[', '(', '{':
			depth++
		case ']', ')', '}':
			depth--
		}
		if depth == 0 && strings.HasPrefix(text[i:], "is") &&
			(i == 0 || !isWordByte(text[i-1])) &&
			(i+2 == len(text) || !isWordByte(text[i+2])) {
			return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+2:]), nil
		}
	}
	return "", "", &DescError{c.line, "clause lacks 'is'"}
}

func isWordByte(b byte) bool {
	return b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// parsePat handles encoding patterns, expanding name matrices over
// the cross product of vector-valued field constraints (leftmost
// constraint varies slowest, matching the paper's Fig 7 layout).
func (d *Desc) parsePat(c clause) error {
	namesText, body, err := splitIs(c)
	if err != nil {
		return err
	}
	names, err := parseNames(namesText, c.line)
	if err != nil {
		return err
	}
	constraintsNode, err := rtl.Parse(body)
	if err != nil {
		return &DescError{c.line, fmt.Sprintf("bad pattern: %v", err)}
	}
	// Flatten the && conjunction into field constraints.
	type constraint struct {
		field *Field
		vals  []uint32
	}
	var cons []constraint
	var flatten func(n rtl.Node) error
	flatten = func(n rtl.Node) error {
		n = rtl.UnwrapSeq(n)
		if b, ok := n.(rtl.Bin); ok && b.Op == "&&" {
			if err := flatten(b.L); err != nil {
				return err
			}
			return flatten(b.R)
		}
		b, ok := n.(rtl.Bin)
		if !ok || b.Op != "==" {
			return &DescError{c.line, fmt.Sprintf("pattern constraint must be field=value, got %s", n)}
		}
		id, ok := rtl.UnwrapSeq(b.L).(rtl.Ident)
		if !ok {
			return &DescError{c.line, "pattern constraint must name a field"}
		}
		f, ok := d.fieldByName[id.Name]
		if !ok {
			return &DescError{c.line, "pattern names unknown field " + id.Name}
		}
		var vals []uint32
		switch v := rtl.UnwrapSeq(b.R).(type) {
		case rtl.Num:
			vals = []uint32{uint32(v.Val)}
		case rtl.Vector:
			for _, e := range v.Elems {
				num, ok := rtl.UnwrapSeq(e).(rtl.Num)
				if !ok {
					return &DescError{c.line, "pattern vector elements must be numbers"}
				}
				vals = append(vals, uint32(num.Val))
			}
		default:
			return &DescError{c.line, "pattern value must be a number or vector"}
		}
		cons = append(cons, constraint{field: f, vals: vals})
		return nil
	}
	if err := flatten(constraintsNode); err != nil {
		return err
	}
	total := 1
	for _, con := range cons {
		total *= len(con.vals)
	}
	if total != len(names) {
		return &DescError{c.line, fmt.Sprintf("pattern expands to %d encodings but %d names given", total, len(names))}
	}
	for i, name := range names {
		if name == "_" {
			continue // hole in the matrix: encoding intentionally left undefined
		}
		var mask, match uint32
		fixed := map[string]uint32{}
		rem := i
		// Leftmost constraint varies slowest.
		stride := total
		for _, con := range cons {
			stride /= len(con.vals)
			v := con.vals[(rem/stride)%len(con.vals)]
			rem %= stride
			mask |= con.field.Mask()
			match |= v << uint(con.field.Lo)
			fixed[con.field.Name] = v
		}
		if _, dup := d.instByName[name]; dup {
			return &DescError{c.line, "duplicate instruction " + name}
		}
		def := &InstDef{Name: name, Mask: mask, Match: match, Fixed: fixed}
		d.Insts = append(d.Insts, def)
		d.instByName[name] = def
	}
	return nil
}

// parseNames parses either a bare name or a bracketed name vector,
// with "_" marking holes.
func parseNames(text string, line int) ([]string, error) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "[") {
		if text == "" || strings.ContainsAny(text, " \t\n") {
			return nil, &DescError{line, "bad name list"}
		}
		return []string{text}, nil
	}
	if !strings.HasSuffix(text, "]") {
		return nil, &DescError{line, "unterminated name vector"}
	}
	return strings.Fields(text[1 : len(text)-1]), nil
}

// parseVal handles "val name is BODY".
func (d *Desc) parseVal(c clause) error {
	namesText, body, err := splitIs(c)
	if err != nil {
		return err
	}
	names, err := parseNames(namesText, c.line)
	if err != nil || len(names) != 1 {
		return &DescError{c.line, "val clause wants exactly one name"}
	}
	node, err := rtl.Parse(body)
	if err != nil {
		return &DescError{c.line, fmt.Sprintf("bad val body: %v", err)}
	}
	if _, dup := d.vals[names[0]]; dup {
		return &DescError{c.line, "duplicate val " + names[0]}
	}
	d.vals[names[0]] = node
	return nil
}

// parseSem handles "sem NAMES is BODY": it meta-evaluates the body
// (beta-reducing description-level lambdas and expanding "@") and
// binds the resulting semantics — a vector zips elementwise with a
// name vector.  A later sem for the same name overrides an earlier
// one, which lets a description refine one member of a matrix (the
// SPARC description overrides "ba", whose annul behaviour differs
// from conditional branches).
func (d *Desc) parseSem(c clause) error {
	namesText, body, err := splitIs(c)
	if err != nil {
		return err
	}
	names, err := parseNames(namesText, c.line)
	if err != nil {
		return err
	}
	node, err := rtl.Parse(body)
	if err != nil {
		return &DescError{c.line, fmt.Sprintf("bad sem body: %v", err)}
	}
	ground, err := d.metaEval(node, 0)
	if err != nil {
		return &DescError{c.line, fmt.Sprintf("sem %v: %v", names, err)}
	}
	var sems []rtl.Node
	if vec, ok := ground.(rtl.Vector); ok && len(names) > 1 {
		sems = vec.Elems
	} else {
		sems = []rtl.Node{ground}
	}
	if len(sems) != len(names) {
		return &DescError{c.line, fmt.Sprintf("sem binds %d names to %d semantics", len(names), len(sems))}
	}
	for i, name := range names {
		def, ok := d.instByName[name]
		if !ok {
			return &DescError{c.line, "sem for undeclared instruction " + name}
		}
		def.Sem = sems[i]
	}
	return nil
}

// Field returns the named field.
func (d *Desc) Field(name string) (*Field, bool) {
	f, ok := d.fieldByName[name]
	return f, ok
}

// File returns the named register file.
func (d *Desc) File(name string) (*RegFile, bool) {
	f, ok := d.fileByName[name]
	return f, ok
}

// AliasFor resolves a register alias.
func (d *Desc) AliasFor(name string) (*Alias, bool) {
	a, ok := d.aliasByName[name]
	return a, ok
}

// Lookup returns the named instruction definition.
func (d *Desc) Lookup(name string) (*InstDef, bool) {
	def, ok := d.instByName[name]
	return def, ok
}

// buildBuckets indexes instructions by the bits every pattern
// constrains, so decoding probes one small bucket.
func (d *Desc) buildBuckets() {
	d.commonMask = ^uint32(0)
	for _, def := range d.Insts {
		d.commonMask &= def.Mask
	}
	d.buckets = map[uint32][]*InstDef{}
	for _, def := range d.Insts {
		key := def.Match & d.commonMask
		d.buckets[key] = append(d.buckets[key], def)
	}
}

// DecodeRaw finds the instruction definition matching word, or nil.
func (d *Desc) DecodeRaw(word uint32) *InstDef {
	for _, def := range d.buckets[word&d.commonMask] {
		if word&def.Mask == def.Match {
			return def
		}
	}
	return nil
}

// FieldVals extracts every declared field's value from word.
func (d *Desc) FieldVals(word uint32) map[string]uint32 {
	out := make(map[string]uint32, len(d.Fields))
	for _, f := range d.Fields {
		out[f.Name] = f.Extract(word)
	}
	return out
}
